// Package freelist provides the fixed-capacity, allocation-free building
// blocks of the transport's batched ingest/egress pipeline: a bounded
// lock-free ring (a Vyukov-style MPMC queue) and a freelist Pool built on
// it. Both are sized once at construction and never grow — overflow is the
// caller's problem by design (the transport counts and drops, it never
// blocks), so a burst can never translate into unbounded memory or into
// backpressure on the UDP socket.
//
// Like internal/sched, the package sits beneath the repo's clock boundary
// (see internal/analysis.ClockUse): recycling infrastructure may read the
// monotonic clock directly for aging/decay policies without routing
// through sim.Clock, because it only stores opaque payloads and can never
// launder a detector timestamp.
package freelist

import "sync/atomic"

// cachePad separates hot atomics onto their own cache lines so producers
// and consumers do not false-share.
type cachePad [64]byte

// slot is one cell of a Ring. seq is the Vyukov sequence stamp: it equals
// the cell index when the cell is free for the enqueuer of that lap, and
// index+1 once a value is stored and visible to the dequeuer.
type slot[T any] struct {
	seq atomic.Uint64
	v   T
}

// Ring is a bounded multi-producer/multi-consumer queue. TryPush and
// TryPop are lock-free, never block, and never allocate; both fail fast
// (full/empty) instead of waiting. The zero value is not usable — build
// one with NewRing.
type Ring[T any] struct {
	mask  uint64
	slots []slot[T]
	_     cachePad
	enq   atomic.Uint64
	_     cachePad
	deq   atomic.Uint64
	_     cachePad
}

// NewRing builds a ring with at least the requested capacity, rounded up
// to the next power of two (minimum 2).
func NewRing[T any](capacity int) *Ring[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	r := &Ring[T]{mask: n - 1, slots: make([]slot[T], n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Len returns the approximate number of queued values. It is exact only
// when no push or pop is in flight; use it for telemetry, not decisions.
func (r *Ring[T]) Len() int {
	n := int64(r.enq.Load()) - int64(r.deq.Load())
	if n < 0 {
		n = 0
	}
	if n > int64(len(r.slots)) {
		n = int64(len(r.slots))
	}
	return int(n)
}

// TryPush enqueues v, reporting false (and storing nothing) when the ring
// is full.
func (r *Ring[T]) TryPush(v T) bool {
	pos := r.enq.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.v = v
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case diff < 0:
			// The dequeuer of the previous lap has not freed the cell:
			// the ring is full.
			return false
		default:
			pos = r.enq.Load()
		}
	}
}

// TryPushN enqueues a prefix of vs with a single position reservation,
// returning how many values were stored (0 when the ring is full). One
// compare-and-swap claims the whole run, so a drain batch costs one
// contended atomic instead of one per datagram.
//
// Safety of the scan-then-claim: every slot in the run is individually
// observed free (seq == position) after loading the enqueue cursor.
// Producers only claim positions by advancing the cursor, so a successful
// CAS from the loaded cursor proves no other producer touched the run in
// between, and consumers only ever free slots — an observed-free slot
// cannot become busy until we claim it.
func (r *Ring[T]) TryPushN(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	for {
		pos := r.enq.Load()
		n := uint64(0)
		for n < uint64(len(vs)) {
			s := &r.slots[(pos+n)&r.mask]
			if s.seq.Load() != pos+n {
				break
			}
			n++
		}
		if n == 0 {
			if int64(r.slots[pos&r.mask].seq.Load())-int64(pos) < 0 {
				return 0 // previous lap not freed: full
			}
			continue // cursor moved under us: reload
		}
		if !r.enq.CompareAndSwap(pos, pos+n) {
			continue
		}
		for i := uint64(0); i < n; i++ {
			s := &r.slots[(pos+i)&r.mask]
			s.v = vs[i]
			s.seq.Store(pos + i + 1)
		}
		return int(n)
	}
}

// TryPop dequeues the oldest value, reporting false (and the zero value)
// when the ring is empty.
func (r *Ring[T]) TryPop() (T, bool) {
	pos := r.deq.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch diff := int64(seq) - int64(pos+1); {
		case diff == 0:
			if r.deq.CompareAndSwap(pos, pos+1) {
				v := s.v
				var zero T
				s.v = zero // drop the reference so the GC can reclaim it
				s.seq.Store(pos + r.mask + 1)
				return v, true
			}
			pos = r.deq.Load()
		case diff < 0:
			// The enqueuer of this lap has not filled the cell: empty.
			var zero T
			return zero, false
		default:
			pos = r.deq.Load()
		}
	}
}

// TryPopN dequeues up to len(dst) values with a single position
// reservation, returning how many were stored into dst (0 when the ring is
// empty). The mirror of TryPushN: every slot in the run is observed filled
// (seq == position+1) after loading the dequeue cursor, and a successful
// CAS from that cursor proves exclusive ownership of the run — producers
// only ever fill slots, so an observed-filled slot stays filled until a
// consumer claims it.
func (r *Ring[T]) TryPopN(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	for {
		pos := r.deq.Load()
		n := uint64(0)
		for n < uint64(len(dst)) {
			s := &r.slots[(pos+n)&r.mask]
			if s.seq.Load() != pos+n+1 {
				break
			}
			n++
		}
		if n == 0 {
			if int64(r.slots[pos&r.mask].seq.Load())-int64(pos+1) < 0 {
				return 0 // this lap's enqueuer has not filled the cell: empty
			}
			continue // cursor moved under us: reload
		}
		if !r.deq.CompareAndSwap(pos, pos+n) {
			continue
		}
		var zero T
		for i := uint64(0); i < n; i++ {
			s := &r.slots[(pos+i)&r.mask]
			dst[i] = s.v
			s.v = zero // drop the reference so the GC can reclaim it
			s.seq.Store(pos + i + r.mask + 1)
		}
		return int(n)
	}
}

package freelist

import (
	"runtime"
	"sync"
	"testing"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push succeeded on a full ring")
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len() = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	} {
		if got := NewRing[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing[int](2)
	for lap := 0; lap < 1000; lap++ {
		if !r.TryPush(lap) {
			t.Fatalf("lap %d: push failed", lap)
		}
		v, ok := r.TryPop()
		if !ok || v != lap {
			t.Fatalf("lap %d: pop = (%d, %v)", lap, v, ok)
		}
	}
}

// TestRingConcurrent hammers the ring from several producers and consumers
// under -race: every pushed value must be popped exactly once.
func TestRingConcurrent(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
	)
	r := NewRing[int](64)
	var wg sync.WaitGroup
	seen := make([]chan int, consumers)
	for i := range seen {
		seen[i] = make(chan int, producers*perProd)
	}
	var produced, consumed sync.WaitGroup
	produced.Add(producers)
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer produced.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				for !r.TryPush(v) {
					runtime.Gosched()
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { produced.Wait(); close(done) }()
	consumed.Add(consumers)
	for c := 0; c < consumers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer consumed.Done()
			for {
				v, ok := r.TryPop()
				if ok {
					seen[c] <- v
					continue
				}
				select {
				case <-done:
					// Producers finished; drain what is left.
					if v, ok := r.TryPop(); ok {
						seen[c] <- v
						continue
					}
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	got := make(map[int]int)
	for _, ch := range seen {
		close(ch)
		for v := range ch {
			got[v]++
		}
	}
	if len(got) != producers*perProd {
		t.Fatalf("popped %d distinct values, want %d", len(got), producers*perProd)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
	}
}

func TestPoolRecyclesAndCountsMisses(t *testing.T) {
	built := 0
	p := NewPool(2, func() *int { built++; v := new(int); return v })
	a := p.Get() // miss 1
	b := p.Get() // miss 2
	if p.Misses() != 2 || built != 2 {
		t.Fatalf("misses = %d (built %d), want 2", p.Misses(), built)
	}
	if !p.Put(a) || !p.Put(b) {
		t.Fatal("Put failed on a non-full freelist")
	}
	c := p.Get()
	d := p.Get()
	if p.Misses() != 2 {
		t.Fatalf("recycled Gets counted as misses: %d", p.Misses())
	}
	if (c != a && c != b) || (d != a && d != b) || c == d {
		t.Fatal("Get did not hand back the recycled values")
	}
	// Overfull Put releases instead of recycling.
	if !p.Put(c) || !p.Put(d) {
		t.Fatal("Put failed while refilling")
	}
	if p.Put(new(int)) {
		t.Fatal("Put succeeded on a full freelist")
	}
}

// TestRingZeroAlloc pins the push/pop fast paths at zero allocations —
// the property the whole ingest pipeline is built on.
func TestRingZeroAlloc(t *testing.T) {
	r := NewRing[*int](8)
	v := new(int)
	if n := testing.AllocsPerRun(1000, func() {
		r.TryPush(v)
		r.TryPop()
	}); n != 0 {
		t.Fatalf("ring push+pop allocates %.1f/op, want 0", n)
	}
	p := NewPool(8, func() *int { return new(int) })
	p.Put(v)
	if n := testing.AllocsPerRun(1000, func() {
		x := p.Get()
		p.Put(x)
	}); n != 0 {
		t.Fatalf("warm pool get+put allocates %.1f/op, want 0", n)
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing[*int](1024)
	v := new(int)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryPush(v)
		r.TryPop()
	}
}

// TestRingBatchOps covers the single-reservation batch push/pop used by
// the ingest drain loop: runs respect FIFO order, a full ring accepts a
// partial prefix, and an empty ring reports 0.
func TestRingBatchOps(t *testing.T) {
	r := NewRing[int](4)
	if got := r.TryPushN(nil); got != 0 {
		t.Fatalf("TryPushN(nil) = %d, want 0", got)
	}
	if got := r.TryPushN([]int{0, 1, 2, 3, 4, 5}); got != 4 {
		t.Fatalf("TryPushN over capacity = %d, want 4", got)
	}
	if got := r.TryPushN([]int{9}); got != 0 {
		t.Fatalf("TryPushN on full ring = %d, want 0", got)
	}
	dst := make([]int, 8)
	if got := r.TryPopN(dst); got != 4 {
		t.Fatalf("TryPopN = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		if dst[i] != i {
			t.Fatalf("TryPopN order: dst = %v", dst[:4])
		}
	}
	if got := r.TryPopN(dst); got != 0 {
		t.Fatalf("TryPopN on empty ring = %d, want 0", got)
	}
	// Mixed single/batch ops across many laps keep FIFO through wraps.
	next, expect := 0, 0
	for lap := 0; lap < 500; lap++ {
		batch := []int{next, next + 1, next + 2}
		next += 3
		if got := r.TryPushN(batch); got != 3 {
			t.Fatalf("lap %d: TryPushN = %d, want 3", lap, got)
		}
		if v, ok := r.TryPop(); !ok || v != expect {
			t.Fatalf("lap %d: TryPop = (%d, %v), want (%d, true)", lap, v, ok, expect)
		}
		expect++
		if got := r.TryPopN(dst[:2]); got != 2 || dst[0] != expect || dst[1] != expect+1 {
			t.Fatalf("lap %d: TryPopN = %d %v, want 2 [%d %d]", lap, got, dst[:2], expect, expect+1)
		}
		expect += 2
	}
}

// TestRingBatchConcurrent mixes batch and single producers/consumers
// under -race: every value exactly once, like TestRingConcurrent.
func TestRingBatchConcurrent(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
		chunk     = 16
	)
	r := NewRing[int](64)
	var wg, produced sync.WaitGroup
	results := make(chan []int, consumers)
	produced.Add(producers)
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer produced.Done()
			vals := make([]int, perProd)
			for i := range vals {
				vals[i] = p*perProd + i
			}
			for len(vals) > 0 {
				n := chunk
				if n > len(vals) {
					n = len(vals)
				}
				k := r.TryPushN(vals[:n])
				if k == 0 {
					runtime.Gosched()
					continue
				}
				vals = vals[k:]
			}
		}()
	}
	done := make(chan struct{})
	go func() { produced.Wait(); close(done) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []int
			buf := make([]int, chunk)
			for {
				if k := r.TryPopN(buf); k > 0 {
					mine = append(mine, buf[:k]...)
					continue
				}
				select {
				case <-done:
					if k := r.TryPopN(buf); k > 0 {
						mine = append(mine, buf[:k]...)
						continue
					}
					results <- mine
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	close(results)
	got := make(map[int]int)
	for mine := range results {
		for _, v := range mine {
			got[v]++
		}
	}
	if len(got) != producers*perProd {
		t.Fatalf("popped %d distinct values, want %d", len(got), producers*perProd)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
	}
}

// TestPoolBatchOps pins GetN/PutN: recycled values come back first,
// only the shortfall is minted (and counted as misses), and PutN
// reports how many values the freelist accepted.
func TestPoolBatchOps(t *testing.T) {
	built := 0
	p := NewPool(4, func() *int { built++; return new(int) })
	seed := []*int{new(int), new(int)}
	if got := p.PutN(seed); got != 2 {
		t.Fatalf("PutN = %d, want 2", got)
	}
	dst := make([]*int, 4)
	p.GetN(dst)
	if built != 2 || p.Misses() != 2 {
		t.Fatalf("built %d (misses %d), want 2 fresh for a 4-wide GetN over 2 recycled", built, p.Misses())
	}
	recycled := 0
	for _, v := range dst {
		if v == seed[0] || v == seed[1] {
			recycled++
		}
	}
	if recycled != 2 {
		t.Fatalf("GetN returned %d recycled values, want 2", recycled)
	}
	// Overfull PutN accepts up to capacity and releases the rest.
	six := make([]*int, 6)
	for i := range six {
		six[i] = new(int)
	}
	if got := p.PutN(six); got != 4 {
		t.Fatalf("overfull PutN = %d, want 4", got)
	}
}

// TestRingBatchZeroAlloc pins the batch paths at zero allocations, like
// TestRingZeroAlloc does for the single-value paths.
func TestRingBatchZeroAlloc(t *testing.T) {
	r := NewRing[*int](64)
	vs := make([]*int, 16)
	for i := range vs {
		vs[i] = new(int)
	}
	dst := make([]*int, 16)
	if n := testing.AllocsPerRun(1000, func() {
		r.TryPushN(vs)
		r.TryPopN(dst)
	}); n != 0 {
		t.Fatalf("batch push+pop allocates %.1f/op, want 0", n)
	}
	p := NewPool(64, func() *int { return new(int) })
	p.PutN(vs)
	if n := testing.AllocsPerRun(1000, func() {
		p.GetN(dst)
		p.PutN(dst)
	}); n != 0 {
		t.Fatalf("warm pool GetN+PutN allocates %.1f/op, want 0", n)
	}
}

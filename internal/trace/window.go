package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"wanfd/internal/nekostat"
)

// Window is an exported slice of a monitor's durable QoS history: every
// delay sample and recorded event inside [From, To), plus the detector
// configuration that produced the recorded suspicions — enough to replay
// the window bit-identically through any detector grid in simulated mode
// (internal/experiment.ReplayWindow, cmd/fdreplay).
type Window struct {
	// From and To bound the window on the recording session's elapsed
	// timeline.
	From, To time.Duration
	// Detector names the live predictor+margin combination (e.g.
	// "LAST+JAC_med") whose suspicion events are recorded, so a replay can
	// verify fidelity against the matching grid member. May be empty.
	Detector string
	// Eta and MinTimeout are the recording monitor's heartbeat period and
	// timeout floor, needed to rebuild an equivalent detector.
	Eta, MinTimeout time.Duration
	// Samples are the heartbeat observations, sorted by receive instant.
	Samples []Sample
	// Events are the recorded suspicion transitions and crash marks,
	// sorted by instant (nekostat kinds on the same timeline as Samples).
	Events []nekostat.Event
}

// Sample is one recorded heartbeat: sequence number plus send and receive
// instants on the session timeline.
type Sample struct {
	Peer       string
	Seq        int64
	Send, Recv time.Duration
}

// ErrBadWindowMagic is returned when window data does not start with the
// expected header.
var ErrBadWindowMagic = errors.New("trace: bad window magic header")

// windowMagic identifies the binary window format, version 1.
var windowMagic = [8]byte{'W', 'F', 'D', 'T', 'R', 'W', '0', '1'}

// maxWindow bounds counts read from a window header — a sanity check
// against corrupt or forged data, mirroring ReadBinary.
const maxWindow = 1 << 28

// WriteWindow encodes w in a compact binary format: a peer-name table,
// then varint-delta-coded samples and events (consecutive instants are
// strongly correlated, so deltas stay small).
func WriteWindow(dst io.Writer, w *Window) error {
	bw := bufio.NewWriter(dst)
	if _, err := bw.Write(windowMagic[:]); err != nil {
		return fmt.Errorf("trace: write window header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putS := func(s string) error {
		if err := putU(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	// Peer-name table: samples index into it, events reference it by
	// index+1 (0 marks the empty source of crash marks).
	idx := make(map[string]int)
	var names []string
	intern := func(name string) int {
		if i, ok := idx[name]; ok {
			return i
		}
		idx[name] = len(names)
		names = append(names, name)
		return len(names) - 1
	}
	for _, s := range w.Samples {
		intern(s.Peer)
	}
	for _, e := range w.Events {
		if e.Source != "" {
			intern(e.Source)
		}
	}
	if err := putI(int64(w.From)); err != nil {
		return fmt.Errorf("trace: write window bounds: %w", err)
	}
	if err := putI(int64(w.To)); err != nil {
		return fmt.Errorf("trace: write window bounds: %w", err)
	}
	if err := putS(w.Detector); err != nil {
		return fmt.Errorf("trace: write window detector: %w", err)
	}
	if err := putI(int64(w.Eta)); err != nil {
		return fmt.Errorf("trace: write window eta: %w", err)
	}
	if err := putI(int64(w.MinTimeout)); err != nil {
		return fmt.Errorf("trace: write window min timeout: %w", err)
	}
	if err := putU(uint64(len(names))); err != nil {
		return fmt.Errorf("trace: write peer table: %w", err)
	}
	for _, name := range names {
		if err := putS(name); err != nil {
			return fmt.Errorf("trace: write peer table: %w", err)
		}
	}
	if err := putU(uint64(len(w.Samples))); err != nil {
		return fmt.Errorf("trace: write sample count: %w", err)
	}
	var prevSeq, prevSend, prevRecv int64
	for i, s := range w.Samples {
		if err := putU(uint64(idx[s.Peer])); err != nil {
			return fmt.Errorf("trace: write sample %d: %w", i, err)
		}
		if err := putI(s.Seq - prevSeq); err != nil {
			return fmt.Errorf("trace: write sample %d: %w", i, err)
		}
		if err := putI(int64(s.Send) - prevSend); err != nil {
			return fmt.Errorf("trace: write sample %d: %w", i, err)
		}
		if err := putI(int64(s.Recv) - prevRecv); err != nil {
			return fmt.Errorf("trace: write sample %d: %w", i, err)
		}
		prevSeq, prevSend, prevRecv = s.Seq, int64(s.Send), int64(s.Recv)
	}
	if err := putU(uint64(len(w.Events))); err != nil {
		return fmt.Errorf("trace: write event count: %w", err)
	}
	var prevAt int64
	for i, e := range w.Events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
		src := uint64(0)
		if e.Source != "" {
			src = uint64(idx[e.Source]) + 1
		}
		if err := putU(src); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
		if err := putI(int64(e.At) - prevAt); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
		if err := putI(e.Seq); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
		prevAt = int64(e.At)
	}
	return bw.Flush()
}

// ReadWindow decodes a window written by WriteWindow. Like ReadBinary it
// never trusts header counts for allocation.
func ReadWindow(src io.Reader) (*Window, error) {
	br := bufio.NewReader(src)
	var head [8]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("trace: read window header: %w", err)
	}
	if head != windowMagic {
		return nil, ErrBadWindowMagic
	}
	getU := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: read %s: %w", what, err)
		}
		return v, nil
	}
	getI := func(what string) (int64, error) {
		v, err := binary.ReadVarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: read %s: %w", what, err)
		}
		return v, nil
	}
	getS := func(what string) (string, error) {
		n, err := getU(what)
		if err != nil {
			return "", err
		}
		if n > maxPeerNameBytes {
			return "", fmt.Errorf("trace: implausible %s length %d", what, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", fmt.Errorf("trace: read %s: %w", what, err)
		}
		return string(b), nil
	}
	w := &Window{}
	from, err := getI("window from")
	if err != nil {
		return nil, err
	}
	to, err := getI("window to")
	if err != nil {
		return nil, err
	}
	w.From, w.To = time.Duration(from), time.Duration(to)
	if w.Detector, err = getS("window detector"); err != nil {
		return nil, err
	}
	eta, err := getI("window eta")
	if err != nil {
		return nil, err
	}
	minTO, err := getI("window min timeout")
	if err != nil {
		return nil, err
	}
	w.Eta, w.MinTimeout = time.Duration(eta), time.Duration(minTO)
	nNames, err := getU("peer table count")
	if err != nil {
		return nil, err
	}
	if nNames > maxWindow {
		return nil, fmt.Errorf("trace: implausible peer table length %d", nNames)
	}
	names := make([]string, 0, min(nNames, 4096))
	for i := uint64(0); i < nNames; i++ {
		name, err := getS("peer name")
		if err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	nSamples, err := getU("sample count")
	if err != nil {
		return nil, err
	}
	if nSamples > maxWindow {
		return nil, fmt.Errorf("trace: implausible sample count %d", nSamples)
	}
	w.Samples = make([]Sample, 0, min(nSamples, 4096))
	var prevSeq, prevSend, prevRecv int64
	for i := uint64(0); i < nSamples; i++ {
		pi, err := getU("sample peer")
		if err != nil {
			return nil, err
		}
		if pi >= uint64(len(names)) {
			return nil, fmt.Errorf("trace: sample %d references unknown peer %d", i, pi)
		}
		dSeq, err := getI("sample seq")
		if err != nil {
			return nil, err
		}
		dSend, err := getI("sample send")
		if err != nil {
			return nil, err
		}
		dRecv, err := getI("sample recv")
		if err != nil {
			return nil, err
		}
		prevSeq += dSeq
		prevSend += dSend
		prevRecv += dRecv
		w.Samples = append(w.Samples, Sample{
			Peer: names[pi],
			Seq:  prevSeq,
			Send: time.Duration(prevSend),
			Recv: time.Duration(prevRecv),
		})
	}
	nEvents, err := getU("event count")
	if err != nil {
		return nil, err
	}
	if nEvents > maxWindow {
		return nil, fmt.Errorf("trace: implausible event count %d", nEvents)
	}
	w.Events = make([]nekostat.Event, 0, min(nEvents, 4096))
	var prevAt int64
	for i := uint64(0); i < nEvents; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: read event %d: %w", i, err)
		}
		src, err := getU("event source")
		if err != nil {
			return nil, err
		}
		if src > uint64(len(names)) {
			return nil, fmt.Errorf("trace: event %d references unknown peer %d", i, src-1)
		}
		dAt, err := getI("event at")
		if err != nil {
			return nil, err
		}
		seq, err := getI("event seq")
		if err != nil {
			return nil, err
		}
		prevAt += dAt
		e := nekostat.Event{Kind: nekostat.Kind(kind), At: time.Duration(prevAt), Seq: seq}
		if src > 0 {
			e.Source = names[src-1]
		}
		w.Events = append(w.Events, e)
	}
	return w, nil
}

// maxPeerNameBytes bounds one string field in the window format.
const maxPeerNameBytes = 1 << 16

package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"wanfd/internal/sim"
)

func TestBinaryRoundTrip(t *testing.T) {
	delays := []time.Duration{
		192 * time.Millisecond,
		205 * time.Millisecond,
		198 * time.Millisecond,
		340 * time.Millisecond,
		193 * time.Millisecond,
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, delays); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(delays) {
		t.Fatalf("len = %d, want %d", len(got), len(delays))
	}
	for i := range delays {
		if got[i] != delays[i] {
			t.Errorf("delay %d = %v, want %v", i, got[i], delays[i])
		}
	}
}

func TestBinaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("not a trace file....."))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	delays := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, delays); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Error("truncated trace should fail")
	}
	if _, err := ReadBinary(bytes.NewReader(raw[:4])); err == nil {
		t.Error("truncated header should fail")
	}
}

func TestBinaryImplausibleCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	// Varint-encode an absurd count.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("implausible count should fail")
	}
}

func TestTextRoundTrip(t *testing.T) {
	delays := []time.Duration{
		192500 * time.Microsecond,
		206123 * time.Microsecond,
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, delays); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	for i := range delays {
		diff := got[i] - delays[i]
		if diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("delay %d = %v, want ≈%v", i, got[i], delays[i])
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# a trace\n\n100.0\n\n# another comment\n200.5\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 100*time.Millisecond {
		t.Errorf("got %v", got)
	}
}

func TestTextBadLine(t *testing.T) {
	if _, err := ReadText(strings.NewReader("100\nnot-a-number\n")); err == nil {
		t.Error("bad line should fail")
	}
}

// Property: binary round trip is exact for any delay sequence.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(raw []int32) bool {
		delays := make([]time.Duration, len(raw))
		for i, v := range raw {
			delays[i] = time.Duration(v) * time.Microsecond
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, delays); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got) != len(delays) {
			return false
		}
		for i := range delays {
			if got[i] != delays[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinaryCompactness(t *testing.T) {
	// Correlated delays must compress well below 8 bytes per sample.
	rng := sim.NewRNG(3, "compact")
	delays := make([]time.Duration, 10000)
	cur := 200 * time.Millisecond
	for i := range delays {
		cur += time.Duration(rng.Intn(2001)-1000) * time.Microsecond
		delays[i] = cur
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, delays); err != nil {
		t.Fatal(err)
	}
	if perSample := float64(buf.Len()) / float64(len(delays)); perSample > 4 {
		t.Errorf("binary trace uses %.1f bytes/sample, want < 4 for correlated series", perSample)
	}
}

func TestReadBinaryForgedCountDoesNotPreallocate(t *testing.T) {
	// A header claiming ~185M entries with a truncated payload must fail
	// with a decode error, quickly and without huge allocations.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0xf0, 0x8b, 0xb9, 0x58, 0x70, 0x58})
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("forged trace should fail to decode")
	}
}

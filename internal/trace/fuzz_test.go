package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary ensures arbitrary input never panics the binary trace
// reader, and that whatever it accepts round-trips.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("WFDTRC01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		delays, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, delays); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil || len(back) != len(delays) {
			t.Fatalf("round trip failed: %v (%d vs %d)", err, len(back), len(delays))
		}
		for i := range delays {
			if back[i] != delays[i] {
				t.Fatalf("delay %d mismatch", i)
			}
		}
	})
}

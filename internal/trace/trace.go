// Package trace records and replays one-way delay traces, so an experiment
// can be rerun bit-identically from a stored observation series — the role
// the recorded RTT traces of [17] play in the paper's lineage.
//
// Two codecs are provided: a compact binary format (magic header, varint
// deltas) and a one-number-per-line text format for interoperability with
// plotting tools.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ErrBadMagic is returned when binary trace data does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic header")

// magic identifies the binary trace format, version 1.
var magic = [8]byte{'W', 'F', 'D', 'T', 'R', 'C', '0', '1'}

// WriteBinary encodes delays to w in the compact binary format: the magic
// header, a varint count, then varint zig-zag deltas between consecutive
// delays (delay series are strongly correlated, so deltas are small).
func WriteBinary(w io.Writer, delays []time.Duration) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(delays)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	prev := int64(0)
	for i, d := range delays {
		delta := int64(d) - prev
		prev = int64(d)
		n := binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: write delay %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) ([]time.Duration, error) {
	br := bufio.NewReader(r)
	var head [8]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if head != magic {
		return nil, ErrBadMagic
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	const maxTrace = 1 << 28 // 256M entries: sanity bound against corrupt headers
	if count > maxTrace {
		return nil, fmt.Errorf("trace: implausible trace length %d", count)
	}
	// Never trust the header for allocation: a forged count would
	// pre-allocate gigabytes before the payload runs out. Grow on demand,
	// seeded with a modest capacity.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	out := make([]time.Duration, 0, capHint)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: read delay %d: %w", i, err)
		}
		prev += delta
		out = append(out, time.Duration(prev))
	}
	return out, nil
}

// WriteText encodes delays to w as one millisecond value per line (fixed
// three decimal places).
func WriteText(w io.Writer, delays []time.Duration) error {
	bw := bufio.NewWriter(w)
	for i, d := range delays {
		ms := float64(d) / float64(time.Millisecond)
		if _, err := bw.WriteString(strconv.FormatFloat(ms, 'f', 3, 64)); err != nil {
			return fmt.Errorf("trace: write line %d: %w", i, err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("trace: write line %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadText decodes a text trace: one delay in milliseconds per line, blank
// lines and lines starting with '#' ignored.
func ReadText(r io.Reader) ([]time.Duration, error) {
	var out []time.Duration
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ms, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, time.Duration(ms*float64(time.Millisecond)))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}

package neko

import (
	"errors"
	"testing"
	"time"

	"wanfd/internal/sim"
	"wanfd/internal/wan"
)

// captureLayer records every message that reaches it from below.
type captureLayer struct {
	Base
	got []Message
}

func (c *captureLayer) Receive(m *Message) { c.got = append(c.got, *m) }

// echoLayer immediately echoes each received message back to its sender
// with the type bumped.
type echoLayer struct {
	Base
	ctx *Context
}

func (e *echoLayer) Init(ctx *Context) error { e.ctx = ctx; return nil }

func (e *echoLayer) Receive(m *Message) {
	e.Send(&Message{From: m.To, To: m.From, Type: m.Type + 1, Seq: m.Seq})
}

// senderLayer sends a burst of messages at Init time.
type senderLayer struct {
	Base
	to ProcessID
	n  int64
}

func (s *senderLayer) Init(ctx *Context) error {
	for i := int64(0); i < s.n; i++ {
		s.Send(&Message{From: ctx.ID, To: s.to, Type: MsgHeartbeat, Seq: i, SentAt: ctx.Clock.Now()})
	}
	return nil
}

func newLosslessSimNet(t *testing.T, eng *sim.Engine, delay time.Duration) *SimNetwork {
	t.Helper()
	net, err := NewSimNetwork(eng, func() (*wan.Channel, error) {
		return wan.NewChannel(wan.ChannelConfig{Delay: &wan.ConstantDelay{D: delay}})
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestProcessValidation(t *testing.T) {
	eng := sim.NewEngine()
	net := newLosslessSimNet(t, eng, 0)
	if _, err := NewProcess(1, eng, net); err == nil {
		t.Error("no layers should be rejected")
	}
	if _, err := NewProcess(1, nil, net, &captureLayer{}); err == nil {
		t.Error("nil clock should be rejected")
	}
	if _, err := NewProcess(1, eng, nil, &captureLayer{}); err == nil {
		t.Error("nil network should be rejected")
	}
}

func TestSimNetworkDelivery(t *testing.T) {
	eng := sim.NewEngine()
	net := newLosslessSimNet(t, eng, 10*time.Millisecond)

	rx := &captureLayer{}
	if _, err := NewProcess(2, eng, net, rx); err != nil {
		t.Fatal(err)
	}
	tx, err := NewProcess(1, eng, net, &senderLayer{to: 2, n: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(rx.got) != 3 {
		t.Fatalf("received %d messages, want 3", len(rx.got))
	}
	for i, m := range rx.got {
		if m.Seq != int64(i) || m.From != 1 || m.To != 2 {
			t.Errorf("message %d = %+v", i, m)
		}
	}
	delivered, dropped, unroutable := net.Stats()
	if delivered != 3 || dropped != 0 || unroutable != 0 {
		t.Errorf("stats = %d/%d/%d, want 3/0/0", delivered, dropped, unroutable)
	}
}

func TestSimNetworkUnroutable(t *testing.T) {
	eng := sim.NewEngine()
	net := newLosslessSimNet(t, eng, 0)
	p, err := NewProcess(1, eng, net, &senderLayer{to: 99, n: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	_, _, unroutable := net.Stats()
	if unroutable != 2 {
		t.Errorf("unroutable = %d, want 2", unroutable)
	}
}

func TestSimNetworkDoubleAttach(t *testing.T) {
	eng := sim.NewEngine()
	net := newLosslessSimNet(t, eng, 0)
	if _, err := net.Attach(1, &captureLayer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(1, &captureLayer{}); err == nil {
		t.Error("double attach should be rejected")
	}
	if _, err := net.Attach(2, nil); err == nil {
		t.Error("nil receiver should be rejected")
	}
}

func TestSimNetworkExplicitChannel(t *testing.T) {
	eng := sim.NewEngine()
	net, err := NewSimNetwork(eng, nil) // no default: unconfigured links drop
	if err != nil {
		t.Fatal(err)
	}
	ch, err := wan.NewChannel(wan.ChannelConfig{Delay: &wan.ConstantDelay{D: 5 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	net.SetChannel(1, 2, ch)

	rx := &captureLayer{}
	if _, err := NewProcess(2, eng, net, rx); err != nil {
		t.Fatal(err)
	}
	tx, err := NewProcess(1, eng, net, &senderLayer{to: 2, n: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(rx.got) != 1 {
		t.Fatalf("received %d, want 1 over explicit channel", len(rx.got))
	}
	if eng.Now() != 5*time.Millisecond {
		t.Errorf("delivery time %v, want 5ms", eng.Now())
	}
}

func TestSimNetworkNoRouteWithoutDefault(t *testing.T) {
	eng := sim.NewEngine()
	net, err := NewSimNetwork(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	rx := &captureLayer{}
	if _, err := NewProcess(2, eng, net, rx); err != nil {
		t.Fatal(err)
	}
	tx, err := NewProcess(1, eng, net, &senderLayer{to: 2, n: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(rx.got) != 0 {
		t.Error("message delivered over unconfigured link")
	}
	_, _, unroutable := net.Stats()
	if unroutable != 1 {
		t.Errorf("unroutable = %d, want 1", unroutable)
	}
}

func TestSimNetworkRequiresEngine(t *testing.T) {
	if _, err := NewSimNetwork(nil, nil); err == nil {
		t.Error("nil engine should be rejected")
	}
}

func TestStackLayerOrderingAndEcho(t *testing.T) {
	eng := sim.NewEngine()
	net := newLosslessSimNet(t, eng, time.Millisecond)

	// Process 2 echoes; process 1 captures replies above its sender.
	echo, err := NewProcess(2, eng, net, &echoLayer{})
	if err != nil {
		t.Fatal(err)
	}
	cap1 := &captureLayer{}
	src, err := NewProcess(1, eng, net, cap1, &senderLayer{to: 2, n: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := echo.Start(); err != nil {
		t.Fatal(err)
	}
	if err := src.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(cap1.got) != 1 {
		t.Fatalf("echo replies = %d, want 1", len(cap1.got))
	}
	if cap1.got[0].Type != MsgHeartbeat+1 || cap1.got[0].From != 2 {
		t.Errorf("reply = %+v", cap1.got[0])
	}
	echo.Stop()
	src.Stop()
}

func TestProcessStartFailureStopsStartedLayers(t *testing.T) {
	eng := sim.NewEngine()
	net := newLosslessSimNet(t, eng, 0)
	failing := &failingLayer{}
	tracking := &trackingLayer{}
	p, err := NewProcess(1, eng, net, failing, tracking)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Fatal("Start should propagate the init failure")
	}
	if !tracking.stopped {
		t.Error("already-initialized lower layer was not stopped after failure")
	}
}

type failingLayer struct{ Base }

func (f *failingLayer) Init(*Context) error { return errors.New("boom") }

type trackingLayer struct {
	Base
	stopped bool
}

func (l *trackingLayer) Stop() { l.stopped = true }

func TestLocalNetwork(t *testing.T) {
	eng := sim.NewEngine()
	net, err := NewLocalNetwork(eng, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rx := &captureLayer{}
	if _, err := NewProcess(2, eng, net, rx); err != nil {
		t.Fatal(err)
	}
	tx, err := NewProcess(1, eng, net, &senderLayer{to: 2, n: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(rx.got) != 2 {
		t.Fatalf("received %d, want 2", len(rx.got))
	}
	if eng.Now() != 2*time.Millisecond {
		t.Errorf("delivery time %v, want 2ms", eng.Now())
	}
}

func TestLocalNetworkValidation(t *testing.T) {
	if _, err := NewLocalNetwork(nil, 0); err == nil {
		t.Error("nil engine should be rejected")
	}
	eng := sim.NewEngine()
	if _, err := NewLocalNetwork(eng, -time.Second); err == nil {
		t.Error("negative latency should be rejected")
	}
	net, err := NewLocalNetwork(eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(1, nil); err == nil {
		t.Error("nil receiver should be rejected")
	}
	if _, err := net.Attach(1, &captureLayer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(1, &captureLayer{}); err == nil {
		t.Error("double attach should be rejected")
	}
}

func TestMessageCopySemantics(t *testing.T) {
	// The network must copy messages so a sender reusing its buffer does
	// not corrupt in-flight messages.
	eng := sim.NewEngine()
	net := newLosslessSimNet(t, eng, 10*time.Millisecond)
	rx := &captureLayer{}
	if _, err := NewProcess(2, eng, net, rx); err != nil {
		t.Fatal(err)
	}
	sender, err := net.Attach(1, &captureLayer{})
	if err != nil {
		t.Fatal(err)
	}
	m := &Message{From: 1, To: 2, Type: MsgHeartbeat, Seq: 7}
	sender.Send(m)
	m.Seq = 999 // mutate after send
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(rx.got) != 1 || rx.got[0].Seq != 7 {
		t.Errorf("got %+v, want Seq 7 (copy semantics)", rx.got)
	}
}

func TestBaseUnwiredDropsSilently(t *testing.T) {
	var b Base
	b.Send(&Message{})    // must not panic
	b.Receive(&Message{}) // must not panic
	if err := b.Init(nil); err != nil {
		t.Errorf("Base.Init = %v", err)
	}
	b.Stop()
}

// Package neko is a compact Go rendition of the Neko framework the paper
// built its experiments on: distributed algorithms are written as stacks of
// layers attached to processes, and the same layer code runs unchanged on a
// simulated network (driven by internal/sim) or a real one (driven by
// internal/transport). Quantitative evaluation hooks (the NekoStat role)
// live in internal/nekostat.
package neko

import (
	"fmt"
	"sync/atomic"
	"time"

	"wanfd/internal/sim"
)

// ProcessID identifies a process of the distributed system.
type ProcessID int

// MessageType distinguishes protocol messages.
type MessageType uint8

// Message types used by the failure-detection stack. Applications may
// define their own starting from MsgUser.
const (
	// MsgHeartbeat is a push-style liveness heartbeat.
	MsgHeartbeat MessageType = iota + 1
	// MsgUser is the first value available to applications.
	MsgUser
)

// Message is the unit of communication between layers and processes.
type Message struct {
	// From and To are the endpoints.
	From, To ProcessID
	// Type is the protocol message type.
	Type MessageType
	// Seq is a sender-assigned sequence number (the heartbeat cycle
	// number in the failure-detection stack).
	Seq int64
	// SentAt is the send time on the experiment's shared synchronized
	// time base (the paper's NTP assumption).
	SentAt time.Duration
	// Payload carries optional application data.
	Payload []byte
}

// Sender consumes messages travelling down the stack (toward the network).
type Sender interface {
	Send(m *Message)
}

// Receiver consumes messages travelling up the stack (from the network).
type Receiver interface {
	Receive(m *Message)
}

// TimedReceiver is an optional Receiver extension: ReceiveAt delivers a
// message together with the receive timestamp the transport already read,
// so receivers that would otherwise call Clock.Now per message (the
// monitor's heartbeat path) reuse the transport's single per-batch reading
// instead. Implementations must treat ReceiveAt(m, at) exactly like
// Receive(m) observed at time at.
//
// The interface is asserted dynamically at attach time, and deliberately
// NOT promoted via Base: a layer that overrides Receive (crash simulation,
// clock skew) must not inherit a ReceiveAt that bypasses its override.
type TimedReceiver interface {
	Receiver
	ReceiveAt(m *Message, at time.Duration)
}

// BatchReceiver is an optional Receiver extension for transports that
// drain several datagrams per wakeup: one call delivers the whole batch,
// all observed at the same timestamp. Receivers may retain individual
// messages per their usual contract but must not retain the slice itself —
// the transport reuses it for the next batch.
type BatchReceiver interface {
	Receiver
	ReceiveBatch(ms []*Message, at time.Duration)
}

// Context gives layers access to their process identity and time source.
type Context struct {
	// ID is the process the layer belongs to.
	ID ProcessID
	// Clock is the process's time source (virtual or real).
	Clock sim.Clock
}

// Layer is one protocol layer in a process stack. Wiring (SetBelow,
// SetAbove) happens before Init; Init may start timers; Stop must cancel
// them. A layer forwards downward traffic (its Send, fed by the layer
// above) to the Sender below it and upward traffic (its Receive, fed by the
// layer below) to the Receiver above it.
type Layer interface {
	Receiver
	Sender
	// SetBelow wires the layer's downward output.
	SetBelow(s Sender)
	// SetAbove wires the layer's upward output.
	SetAbove(r Receiver)
	// Init starts the layer's active behaviour, if any.
	Init(ctx *Context) error
	// Stop halts the layer's active behaviour.
	Stop()
}

// Base provides the passive-layer plumbing: it stores the neighbours and
// forwards in both directions. Embed it and override what the layer
// intercepts. The zero value is ready to use. Wiring and forwarding are
// safe for concurrent use: on a real network, packets can arrive on the
// transport goroutine while the stack is still starting.
type Base struct {
	below atomic.Value // senderBox
	above atomic.Value // receiverBox
}

type senderBox struct{ s Sender }
type receiverBox struct{ r Receiver }

// SetBelow stores the downward neighbour.
func (b *Base) SetBelow(s Sender) { b.below.Store(senderBox{s: s}) }

// SetAbove stores the upward neighbour.
func (b *Base) SetAbove(r Receiver) { b.above.Store(receiverBox{r: r}) }

// Send forwards a message down the stack; it silently drops the message if
// the layer is the bottom of an unwired stack.
func (b *Base) Send(m *Message) {
	if v, ok := b.below.Load().(senderBox); ok && v.s != nil {
		v.s.Send(m)
	}
}

// Receive forwards a message up the stack; it silently drops the message at
// the top of the stack.
func (b *Base) Receive(m *Message) {
	if v, ok := b.above.Load().(receiverBox); ok && v.r != nil {
		v.r.Receive(m)
	}
}

// Init is a no-op for passive layers.
func (b *Base) Init(*Context) error { return nil }

// Stop is a no-op for passive layers.
func (b *Base) Stop() {}

// Network attaches process stacks to a message-passing medium.
type Network interface {
	// Attach registers a process and its upward delivery target, and
	// returns the Sender the process bottom layer uses to transmit.
	Attach(id ProcessID, r Receiver) (Sender, error)
}

// Process is a stack of layers attached to a network. Layers are given
// top-first: layers[0] receives messages last and sends first.
type Process struct {
	id     ProcessID
	layers []Layer
	ctx    *Context
}

// NewProcess wires layers (top-first) over the network and returns the
// process, ready to Start. Every process attaches to the network exactly
// once.
func NewProcess(id ProcessID, clock sim.Clock, net Network, layers ...Layer) (*Process, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("neko: process %d needs at least one layer", id)
	}
	if clock == nil {
		return nil, fmt.Errorf("neko: process %d needs a clock", id)
	}
	if net == nil {
		return nil, fmt.Errorf("neko: process %d needs a network", id)
	}
	// Wire the layers among themselves before attaching to the network:
	// a real transport may deliver packets the moment it has a receiver.
	for i := 0; i < len(layers)-1; i++ {
		layers[i].SetBelow(layers[i+1])
		layers[i+1].SetAbove(layers[i])
	}
	bottom := layers[len(layers)-1]
	sender, err := net.Attach(id, bottom)
	if err != nil {
		return nil, fmt.Errorf("attach process %d: %w", id, err)
	}
	bottom.SetBelow(sender)
	return &Process{
		id:     id,
		layers: layers,
		ctx:    &Context{ID: id, Clock: clock},
	}, nil
}

// ID returns the process identifier.
func (p *Process) ID() ProcessID { return p.id }

// Start initializes the layers bottom-up so that lower layers are live
// before upper layers begin emitting.
func (p *Process) Start() error {
	for i := len(p.layers) - 1; i >= 0; i-- {
		if err := p.layers[i].Init(p.ctx); err != nil {
			for j := i + 1; j < len(p.layers); j++ {
				p.layers[j].Stop()
			}
			return fmt.Errorf("init layer %d of process %d: %w", i, p.id, err)
		}
	}
	return nil
}

// Stop halts the layers top-down.
func (p *Process) Stop() {
	for _, l := range p.layers {
		l.Stop()
	}
}

package neko

import (
	"fmt"
	"time"

	"wanfd/internal/sim"
	"wanfd/internal/wan"
)

// SimNetwork delivers messages through per-direction wan.Channel models on
// a discrete-event engine — the simulated-network driver of the framework.
// It is single-threaded by construction (everything runs inside engine
// events).
type SimNetwork struct {
	engine    *sim.Engine
	channels  map[link]*wan.Channel
	receivers map[ProcessID]Receiver
	// DefaultChannel, when non-nil, serves any link without an explicit
	// channel.
	defaultCh func() (*wan.Channel, error)

	delivered  uint64
	dropped    uint64
	unroutable uint64
}

type link struct {
	from, to ProcessID
}

// NewSimNetwork creates a simulated network on engine. newDefault, if
// non-nil, lazily builds a channel for each (from, to) pair on first use;
// links can also be configured explicitly with SetChannel.
func NewSimNetwork(engine *sim.Engine, newDefault func() (*wan.Channel, error)) (*SimNetwork, error) {
	if engine == nil {
		return nil, fmt.Errorf("neko: sim network needs an engine")
	}
	return &SimNetwork{
		engine:    engine,
		channels:  make(map[link]*wan.Channel),
		receivers: make(map[ProcessID]Receiver),
		defaultCh: newDefault,
	}, nil
}

// SetChannel installs the channel carrying messages from one process to
// another (one direction).
func (n *SimNetwork) SetChannel(from, to ProcessID, c *wan.Channel) {
	n.channels[link{from, to}] = c
}

var _ Network = (*SimNetwork)(nil)

// Attach implements Network.
func (n *SimNetwork) Attach(id ProcessID, r Receiver) (Sender, error) {
	if r == nil {
		return nil, fmt.Errorf("neko: process %d attached a nil receiver", id)
	}
	if _, dup := n.receivers[id]; dup {
		return nil, fmt.Errorf("neko: process %d attached twice", id)
	}
	n.receivers[id] = r
	return &simSender{net: n, from: id}, nil
}

type simSender struct {
	net  *SimNetwork
	from ProcessID
}

func (s *simSender) Send(m *Message) {
	s.net.transmit(s.from, m)
}

func (n *SimNetwork) transmit(from ProcessID, m *Message) {
	dst, ok := n.receivers[m.To]
	if !ok {
		n.unroutable++
		return
	}
	ch, err := n.channelFor(from, m.To)
	if err != nil || ch == nil {
		n.unroutable++
		return
	}
	deliverAt, ok := ch.Transmit(n.engine.Now())
	if !ok {
		n.dropped++
		return
	}
	msg := *m // copy: the sender may reuse its message
	n.engine.At(deliverAt, func() {
		n.delivered++
		dst.Receive(&msg)
	})
}

func (n *SimNetwork) channelFor(from, to ProcessID) (*wan.Channel, error) {
	l := link{from, to}
	if c, ok := n.channels[l]; ok {
		return c, nil
	}
	if n.defaultCh == nil {
		return nil, nil
	}
	c, err := n.defaultCh()
	if err != nil {
		return nil, err
	}
	n.channels[l] = c
	return c, nil
}

// Stats reports delivered, channel-dropped and unroutable message counts.
func (n *SimNetwork) Stats() (delivered, dropped, unroutable uint64) {
	return n.delivered, n.dropped, n.unroutable
}

// LocalNetwork is a zero-latency in-memory network, useful in tests and for
// wiring co-located processes. Messages are delivered on the engine at the
// current time plus an optional fixed latency.
type LocalNetwork struct {
	engine    *sim.Engine
	latency   time.Duration
	receivers map[ProcessID]Receiver
}

// NewLocalNetwork creates a loss-free constant-latency network on engine.
func NewLocalNetwork(engine *sim.Engine, latency time.Duration) (*LocalNetwork, error) {
	if engine == nil {
		return nil, fmt.Errorf("neko: local network needs an engine")
	}
	if latency < 0 {
		return nil, fmt.Errorf("neko: negative latency %v", latency)
	}
	return &LocalNetwork{
		engine:    engine,
		latency:   latency,
		receivers: make(map[ProcessID]Receiver),
	}, nil
}

var _ Network = (*LocalNetwork)(nil)

// Attach implements Network.
func (n *LocalNetwork) Attach(id ProcessID, r Receiver) (Sender, error) {
	if r == nil {
		return nil, fmt.Errorf("neko: process %d attached a nil receiver", id)
	}
	if _, dup := n.receivers[id]; dup {
		return nil, fmt.Errorf("neko: process %d attached twice", id)
	}
	n.receivers[id] = r
	return senderFunc(func(m *Message) {
		dst, ok := n.receivers[m.To]
		if !ok {
			return
		}
		msg := *m
		n.engine.AfterFunc(n.latency, func() { dst.Receive(&msg) })
	}), nil
}

type senderFunc func(m *Message)

func (f senderFunc) Send(m *Message) { f(m) }

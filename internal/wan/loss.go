package wan

import (
	"fmt"
	"math/rand"
)

// LossModel decides, per transmitted packet in send order, whether the
// packet is dropped by the channel.
type LossModel interface {
	Lose() bool
}

// NoLoss never drops packets.
type NoLoss struct{}

var _ LossModel = NoLoss{}

// Lose reports false.
func (NoLoss) Lose() bool { return false }

// BernoulliLoss drops each packet independently with probability P.
type BernoulliLoss struct {
	p   float64
	rng *rand.Rand
}

// NewBernoulliLoss validates p ∈ [0,1] and builds the model.
func NewBernoulliLoss(p float64, rng *rand.Rand) (*BernoulliLoss, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("wan: loss probability %v out of [0,1]", p)
	}
	return &BernoulliLoss{p: p, rng: rng}, nil
}

var _ LossModel = (*BernoulliLoss)(nil)

// Lose draws one Bernoulli trial.
func (b *BernoulliLoss) Lose() bool { return b.rng.Float64() < b.p }

// GilbertElliottLoss is the classic two-state bursty loss model: the channel
// alternates between a Good state (low loss) and a Bad state (high loss),
// with geometric sojourn times. Internet losses are bursty, and burstiness
// is what stresses a failure detector's freshness-point logic (several
// consecutive heartbeats missing looks exactly like a crash).
type GilbertElliottLoss struct {
	pGood2Bad float64
	pBad2Good float64
	lossGood  float64
	lossBad   float64
	bad       bool
	rng       *rand.Rand
}

// GilbertElliottConfig parameterizes GilbertElliottLoss. All probabilities
// are per packet.
type GilbertElliottConfig struct {
	PGoodToBad float64 // transition probability Good→Bad
	PBadToGood float64 // transition probability Bad→Good
	LossGood   float64 // loss probability while Good
	LossBad    float64 // loss probability while Bad
}

// NewGilbertElliottLoss validates cfg and builds the model starting in the
// Good state.
func NewGilbertElliottLoss(cfg GilbertElliottConfig, rng *rand.Rand) (*GilbertElliottLoss, error) {
	for _, p := range []float64{cfg.PGoodToBad, cfg.PBadToGood, cfg.LossGood, cfg.LossBad} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("wan: Gilbert-Elliott probability %v out of [0,1]", p)
		}
	}
	return &GilbertElliottLoss{
		pGood2Bad: cfg.PGoodToBad,
		pBad2Good: cfg.PBadToGood,
		lossGood:  cfg.LossGood,
		lossBad:   cfg.LossBad,
		rng:       rng,
	}, nil
}

var _ LossModel = (*GilbertElliottLoss)(nil)

// Lose advances the channel state by one packet and reports whether that
// packet is dropped.
func (g *GilbertElliottLoss) Lose() bool {
	if g.bad {
		if g.rng.Float64() < g.pBad2Good {
			g.bad = false
		}
	} else {
		if g.rng.Float64() < g.pGood2Bad {
			g.bad = true
		}
	}
	p := g.lossGood
	if g.bad {
		p = g.lossBad
	}
	return g.rng.Float64() < p
}

// InBadState reports whether the channel is currently in the Bad state
// (exported for tests and channel introspection).
func (g *GilbertElliottLoss) InBadState() bool { return g.bad }

// StationaryLoss returns the long-run loss probability implied by the
// configuration.
func (g *GilbertElliottLoss) StationaryLoss() float64 {
	denom := g.pGood2Bad + g.pBad2Good
	if denom == 0 {
		return g.lossGood
	}
	piBad := g.pGood2Bad / denom
	return (1-piBad)*g.lossGood + piBad*g.lossBad
}

package wan

import (
	"fmt"
	"time"
)

// Channel composes a delay model and a loss model into a unidirectional
// fair-lossy link: it may drop messages but never creates or duplicates
// them — the paper's link assumption, matching UDP.
type Channel struct {
	delay DelayModel
	loss  LossModel
	fifo  bool
	last  time.Duration // latest delivery time handed out (for FIFO mode)

	sent    uint64
	dropped uint64
}

// ChannelConfig parameterizes a Channel.
type ChannelConfig struct {
	Delay DelayModel
	Loss  LossModel // nil means lossless
	// FIFO forces in-order delivery by clamping each delivery time to be
	// no earlier than the previous one (TCP-like ordering). The paper's
	// UDP channel leaves this false: reordering happens naturally when a
	// later packet draws a smaller delay.
	FIFO bool
}

// NewChannel validates cfg and builds the channel.
func NewChannel(cfg ChannelConfig) (*Channel, error) {
	if cfg.Delay == nil {
		return nil, fmt.Errorf("wan: channel requires a delay model")
	}
	loss := cfg.Loss
	if loss == nil {
		loss = NoLoss{}
	}
	return &Channel{delay: cfg.Delay, loss: loss, fifo: cfg.FIFO}, nil
}

// Transmit simulates sending one packet at sendTime. It returns the
// delivery time and ok=true, or ok=false if the channel dropped the packet.
func (c *Channel) Transmit(sendTime time.Duration) (deliverAt time.Duration, ok bool) {
	c.sent++
	if c.loss.Lose() {
		c.dropped++
		return 0, false
	}
	d := c.delay.Sample(sendTime)
	at := sendTime + d
	if c.fifo {
		if at < c.last {
			at = c.last
		}
		c.last = at
	}
	return at, true
}

// Stats returns the number of packets offered to the channel and the number
// dropped.
func (c *Channel) Stats() (sent, dropped uint64) { return c.sent, c.dropped }

// LossRate returns the observed fraction of offered packets that were
// dropped (0 if nothing was sent).
func (c *Channel) LossRate() float64 {
	if c.sent == 0 {
		return 0
	}
	return float64(c.dropped) / float64(c.sent)
}

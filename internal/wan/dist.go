// Package wan models wide-area-network channels: one-way delay processes,
// loss processes, and their composition into a Channel that the simulated
// network driver uses to deliver heartbeat messages.
//
// The paper ran on a real Italy–Japan Internet path; this package provides
// a calibrated stochastic substitute (see DESIGN.md §2). Delay processes are
// temporally correlated (AR(1) queueing component plus heavy-tail spikes),
// because the relative accuracy of the paper's predictors — ARIMA beating
// windowed means beating LAST — only manifests on correlated delay series.
package wan

import (
	"math"
	"math/rand"
)

// sampleGamma draws from a Gamma(shape, scale) distribution using the
// Marsaglia–Tsang method. shape and scale must be positive.
func sampleGamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		return sampleGamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		x := rng.NormFloat64()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// samplePareto draws from a bounded Pareto distribution on [lo, hi] with
// tail index alpha. Used for delay spikes.
func samplePareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	u := rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1.0/alpha)
}

package wan

import (
	"math"
	"time"

	"wanfd/internal/sim"
)

// Preset identifies a pre-calibrated channel configuration.
type Preset int

// Channel presets. ItalyJapan reproduces the link of the paper's Table 4;
// the others support the paper's "other environments" future work.
const (
	// PresetItalyJapan emulates the paper's ADSL(Firenze)–JAIST path:
	// one-way delay min ≈192 ms, mean ≈206 ms, σ ≈7.6 ms, max ≈340 ms,
	// loss < 1%, mild burstiness, temporally correlated queueing.
	PresetItalyJapan Preset = iota + 1
	// PresetLAN emulates a quiet local network: sub-millisecond floor,
	// tiny jitter, negligible loss.
	PresetLAN
	// PresetLossyMobile emulates a congested mobile/wireless path: high
	// jitter, strong diurnal swing, bursty multi-percent loss.
	PresetLossyMobile
	// PresetBottleneck is the mechanistic queueing channel: a single
	// bottleneck router at 80% utilization shared with Poisson cross-
	// traffic, where burstiness emerges from queue dynamics rather than
	// from fitted distribution parameters.
	PresetBottleneck
)

// String returns the preset name.
func (p Preset) String() string {
	switch p {
	case PresetItalyJapan:
		return "italy-japan"
	case PresetLAN:
		return "lan"
	case PresetLossyMobile:
		return "lossy-mobile"
	case PresetBottleneck:
		return "bottleneck"
	default:
		return "unknown"
	}
}

// NewPresetChannel builds a channel for the preset. seed drives all of the
// channel's randomness; stream distinguishes multiple channels in one
// experiment (e.g. the two directions of a link).
func NewPresetChannel(p Preset, seed int64, stream string) (*Channel, error) {
	switch p {
	case PresetItalyJapan:
		return newItalyJapan(seed, stream)
	case PresetLAN:
		return newLAN(seed, stream)
	case PresetLossyMobile:
		return newLossyMobile(seed, stream)
	case PresetBottleneck:
		return newBottleneck(seed, stream)
	default:
		return nil, &UnknownPresetError{Preset: p}
	}
}

// UnknownPresetError reports an unrecognized channel preset.
type UnknownPresetError struct {
	// Preset is the unrecognized value.
	Preset Preset
}

func (e *UnknownPresetError) Error() string {
	return "wan: unknown channel preset " + e.Preset.String()
}

// Calibration targets for the Italy–Japan preset (Table 4 of the paper):
// one-way delay min ≈192 ms, mean ≈206 ms, σ in the high single digits,
// max 340 ms, loss < 1%.
//
// Two delay components over the 192 ms propagation floor:
//   - a fast AR(1) queue (mean ≈15 ms, correlated at the seconds scale)
//     with rare bounded-Pareto spikes of 40–145 ms for the 340 ms maximum;
//   - a deterministic diurnal congestion flank: the paper's runs executed
//     on a live ADSL line whose load follows the hours-scale congestion
//     cycle, so each multi-hour run sees a net drift. Starting at the peak
//     (phase π/2) makes every run ride the falling flank — the regime in
//     which the paper's reported ordering (the long-memory MEAN predictor
//     slowest, adaptive predictors faster) is reproducible rather than
//     realization-dependent. See DESIGN.md §2.
func newItalyJapan(seed int64, stream string) (*Channel, error) {
	delay, err := NewAR1GammaDelay(AR1GammaConfig{
		Base:       192 * time.Millisecond,
		Rho:        0.6,
		GammaShape: 2.25,
		GammaScale: 2.667, // ms; fast queue mean ≈ 15 ms, σ ≈ 5 ms
		SpikeProb:  0.0015,
		SpikeLo:    40 * time.Millisecond,
		SpikeHi:    145 * time.Millisecond,
		Cap:        285 * time.Millisecond, // 192 + (285-192)*1.6 ≈ 341 ms at the diurnal peak
	}, sim.NewRNG(seed, stream+"/delay"))
	if err != nil {
		return nil, err
	}
	diurnal, err := NewDiurnalDelay(delay, 192*time.Millisecond, 0.6, 20000*time.Second, math.Pi/2)
	if err != nil {
		return nil, err
	}
	loss, err := NewGilbertElliottLoss(GilbertElliottConfig{
		PGoodToBad: 0.0004,
		PBadToGood: 0.08,
		LossGood:   0.001,
		LossBad:    0.5,
	}, sim.NewRNG(seed, stream+"/loss"))
	if err != nil {
		return nil, err
	}
	return NewChannel(ChannelConfig{Delay: diurnal, Loss: loss})
}

func newLAN(seed int64, stream string) (*Channel, error) {
	delay, err := NewAR1GammaDelay(AR1GammaConfig{
		Base:       200 * time.Microsecond,
		Rho:        0.3,
		GammaShape: 2,
		GammaScale: 0.05, // ms
		Cap:        5 * time.Millisecond,
	}, sim.NewRNG(seed, stream+"/delay"))
	if err != nil {
		return nil, err
	}
	loss, err := NewBernoulliLoss(1e-5, sim.NewRNG(seed, stream+"/loss"))
	if err != nil {
		return nil, err
	}
	return NewChannel(ChannelConfig{Delay: delay, Loss: loss})
}

func newLossyMobile(seed int64, stream string) (*Channel, error) {
	base, err := NewAR1GammaDelay(AR1GammaConfig{
		Base:       60 * time.Millisecond,
		Rho:        0.8,
		GammaShape: 1,
		GammaScale: 12, // ms; stationary queue mean 60 ms
		SpikeProb:  0.01,
		SpikeLo:    100 * time.Millisecond,
		SpikeHi:    1500 * time.Millisecond,
	}, sim.NewRNG(seed, stream+"/delay"))
	if err != nil {
		return nil, err
	}
	delay, err := NewDiurnalDelay(base, 60*time.Millisecond, 0.5, 10*time.Minute, 0)
	if err != nil {
		return nil, err
	}
	loss, err := NewGilbertElliottLoss(GilbertElliottConfig{
		PGoodToBad: 0.005,
		PBadToGood: 0.05,
		LossGood:   0.005,
		LossBad:    0.4,
	}, sim.NewRNG(seed, stream+"/loss"))
	if err != nil {
		return nil, err
	}
	return NewChannel(ChannelConfig{Delay: delay, Loss: loss})
}

func newBottleneck(seed int64, stream string) (*Channel, error) {
	delay, err := NewQueueDelay(QueueConfig{
		Base:         40 * time.Millisecond,
		Service:      time.Millisecond,
		CrossRate:    160,
		CrossService: 5 * time.Millisecond, // utilization 0.8
		Cap:          500 * time.Millisecond,
	}, sim.NewRNG(seed, stream+"/queue"))
	if err != nil {
		return nil, err
	}
	loss, err := NewBernoulliLoss(0.002, sim.NewRNG(seed, stream+"/loss"))
	if err != nil {
		return nil, err
	}
	return NewChannel(ChannelConfig{Delay: delay, Loss: loss})
}

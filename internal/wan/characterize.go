package wan

import (
	"fmt"
	"strings"
	"time"

	"wanfd/internal/stats"
)

// Characterization summarizes a channel's behaviour the way the paper's
// Table 4 characterizes the Italy–Japan connection, extended with the
// delay percentiles that matter when sizing timeouts.
type Characterization struct {
	Samples     int
	MeanDelay   time.Duration
	StdDevDelay time.Duration
	MinDelay    time.Duration
	MaxDelay    time.Duration
	P50Delay    time.Duration
	P95Delay    time.Duration
	P99Delay    time.Duration
	LossRate    float64
}

// Characterize offers n packets at interval eta to the channel and
// summarizes the delivered delays and the loss rate. It consumes channel
// state (delay correlations, loss bursts advance).
func Characterize(c *Channel, n int, eta time.Duration) (Characterization, error) {
	if n <= 0 {
		return Characterization{}, fmt.Errorf("wan: characterize needs n > 0, got %d", n)
	}
	if eta <= 0 {
		return Characterization{}, fmt.Errorf("wan: characterize needs eta > 0, got %v", eta)
	}
	samples := make([]float64, 0, n)
	var lost int
	for i := 0; i < n; i++ {
		sendAt := time.Duration(i) * eta
		deliverAt, ok := c.Transmit(sendAt)
		if !ok {
			lost++
			continue
		}
		samples = append(samples, float64(deliverAt-sendAt)/float64(time.Millisecond))
	}
	if len(samples) == 0 {
		return Characterization{Samples: n, LossRate: 1}, nil
	}
	sum, err := stats.Summarize(samples)
	if err != nil {
		return Characterization{}, err
	}
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	return Characterization{
		Samples:     n,
		MeanDelay:   ms(sum.Mean),
		StdDevDelay: ms(sum.StdDev),
		MinDelay:    ms(sum.Min),
		MaxDelay:    ms(sum.Max),
		P50Delay:    ms(sum.P50),
		P95Delay:    ms(sum.P95),
		P99Delay:    ms(sum.P99),
		LossRate:    float64(lost) / float64(n),
	}, nil
}

// Table renders the characterization in the layout of the paper's Table 4.
func (c Characterization) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mean one-way delay      %8.1f msec\n", float64(c.MeanDelay)/float64(time.Millisecond))
	fmt.Fprintf(&b, "Standard deviation      %8.1f msec\n", float64(c.StdDevDelay)/float64(time.Millisecond))
	fmt.Fprintf(&b, "Maximum one-way delay   %8.0f msec\n", float64(c.MaxDelay)/float64(time.Millisecond))
	fmt.Fprintf(&b, "Minimum one-way delay   %8.0f msec\n", float64(c.MinDelay)/float64(time.Millisecond))
	fmt.Fprintf(&b, "Median / P95 / P99      %8.0f / %.0f / %.0f msec\n",
		float64(c.P50Delay)/float64(time.Millisecond),
		float64(c.P95Delay)/float64(time.Millisecond),
		float64(c.P99Delay)/float64(time.Millisecond))
	fmt.Fprintf(&b, "Loss probability        %8.3f %%\n", c.LossRate*100)
	fmt.Fprintf(&b, "Samples                 %8d\n", c.Samples)
	return b.String()
}

// CollectDelays offers n packets at interval eta and returns the delivered
// one-way delays in arrival order of the underlying send sequence (lost
// packets contribute nothing). This is the observation stream the paper's
// predictors consume in the accuracy experiment.
func CollectDelays(c *Channel, n int, eta time.Duration) ([]time.Duration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wan: collect needs n > 0, got %d", n)
	}
	if eta <= 0 {
		return nil, fmt.Errorf("wan: collect needs eta > 0, got %v", eta)
	}
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		sendAt := time.Duration(i) * eta
		deliverAt, ok := c.Transmit(sendAt)
		if !ok {
			continue
		}
		out = append(out, deliverAt-sendAt)
	}
	return out, nil
}

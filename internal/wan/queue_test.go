package wan

import (
	"math"
	"testing"
	"time"

	"wanfd/internal/sim"
	"wanfd/internal/stats"
)

func TestSamplePoissonMoments(t *testing.T) {
	rng := sim.NewRNG(71, "poisson")
	for _, lambda := range []float64{0.5, 4, 20} {
		var r stats.Running
		for i := 0; i < 100000; i++ {
			r.Add(float64(samplePoisson(rng, lambda)))
		}
		if math.Abs(r.Mean()-lambda) > 0.05*lambda+0.02 {
			t.Errorf("lambda %v: mean %v", lambda, r.Mean())
		}
		if math.Abs(r.Variance()-lambda) > 0.1*lambda+0.05 {
			t.Errorf("lambda %v: variance %v", lambda, r.Variance())
		}
	}
	if samplePoisson(sim.NewRNG(1, "x"), 0) != 0 {
		t.Error("lambda 0 should give 0")
	}
	// Normal-approximation branch.
	rng2 := sim.NewRNG(72, "poisson-big")
	var r stats.Running
	for i := 0; i < 50000; i++ {
		n := samplePoisson(rng2, 400)
		if n < 0 {
			t.Fatal("negative count")
		}
		r.Add(float64(n))
	}
	if math.Abs(r.Mean()-400) > 2 {
		t.Errorf("lambda 400: mean %v", r.Mean())
	}
}

func TestQueueConfigValidation(t *testing.T) {
	rng := sim.NewRNG(1, "q")
	bad := []QueueConfig{
		{Service: 0},
		{Service: time.Millisecond, CrossRate: -1},
		{Service: time.Millisecond, CrossRate: 10, CrossService: 0},
		{Service: time.Millisecond, CrossRate: 200, CrossService: 10 * time.Millisecond}, // rho = 2
	}
	for i, cfg := range bad {
		if _, err := NewQueueDelay(cfg, rng); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := NewQueueDelay(QueueConfig{Service: time.Millisecond}, nil); err == nil {
		t.Error("nil rng should be rejected")
	}
}

func TestQueueUtilization(t *testing.T) {
	cfg := QueueConfig{CrossRate: 100, CrossService: 5 * time.Millisecond}
	if got := cfg.Utilization(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
}

func TestQueueDelayNoCrossTraffic(t *testing.T) {
	q, err := NewQueueDelay(QueueConfig{
		Base:    100 * time.Millisecond,
		Service: 2 * time.Millisecond,
	}, sim.NewRNG(2, "q0"))
	if err != nil {
		t.Fatal(err)
	}
	// Widely spaced packets: delay = base + own service, queue drains.
	for i := 0; i < 10; i++ {
		d := q.Sample(time.Duration(i) * time.Second)
		if d != 102*time.Millisecond {
			t.Fatalf("sample %d = %v, want 102ms", i, d)
		}
	}
	// Back-to-back packets at the same instant build a queue.
	base := 100 * time.Second
	d1 := q.Sample(base)
	d2 := q.Sample(base)
	d3 := q.Sample(base)
	if !(d1 < d2 && d2 < d3) {
		t.Errorf("simultaneous packets should queue: %v %v %v", d1, d2, d3)
	}
	if q.Backlog() <= 0 {
		t.Error("backlog should be positive after a burst")
	}
}

func TestQueueDelayGrowsWithUtilization(t *testing.T) {
	meanWait := func(rho float64) float64 {
		t.Helper()
		q, err := NewQueueDelay(QueueConfig{
			Base:         100 * time.Millisecond,
			Service:      time.Millisecond,
			CrossRate:    rho / 0.005, // ρ / E[S]
			CrossService: 5 * time.Millisecond,
		}, sim.NewRNG(3, "qsweep"))
		if err != nil {
			t.Fatal(err)
		}
		var r stats.Running
		for i := 0; i < 30000; i++ {
			d := q.Sample(time.Duration(i) * 100 * time.Millisecond)
			r.Add(float64(d-100*time.Millisecond) / float64(time.Millisecond))
		}
		return r.Mean()
	}
	w30, w60, w90 := meanWait(0.3), meanWait(0.6), meanWait(0.9)
	if !(w30 < w60 && w60 < w90) {
		t.Fatalf("mean wait not increasing with utilization: %.2f %.2f %.2f", w30, w60, w90)
	}
	// Queueing delay explodes toward saturation (M/M/1 shape: ρ/(1−ρ)).
	if w90 < 3*w60 {
		t.Errorf("near-saturation wait %.2f not ≫ mid-load wait %.2f", w90, w60)
	}
}

func TestQueueDelayStableBacklog(t *testing.T) {
	q, err := NewQueueDelay(QueueConfig{
		Base:         50 * time.Millisecond,
		Service:      time.Millisecond,
		CrossRate:    100,
		CrossService: 7 * time.Millisecond, // ρ = 0.7
	}, sim.NewRNG(4, "qstable"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		q.Sample(time.Duration(i) * 100 * time.Millisecond)
	}
	// A stable queue's backlog stays bounded (generously: 100 × mean).
	if q.Backlog() > 2*time.Second {
		t.Errorf("backlog %v diverged at rho=0.7", q.Backlog())
	}
}

func TestQueueDelayCapAndChannelIntegration(t *testing.T) {
	q, err := NewQueueDelay(QueueConfig{
		Base:         10 * time.Millisecond,
		Service:      time.Millisecond,
		CrossRate:    150,
		CrossService: 6 * time.Millisecond, // ρ = 0.9
		Cap:          100 * time.Millisecond,
	}, sim.NewRNG(5, "qcap"))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{Delay: q})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Characterize(ch, 20000, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxDelay > 110*time.Millisecond {
		t.Errorf("max delay %v exceeds base+cap", c.MaxDelay)
	}
	if c.MinDelay < 10*time.Millisecond {
		t.Errorf("min delay %v below base", c.MinDelay)
	}
	if c.MeanDelay <= 11*time.Millisecond {
		t.Errorf("mean delay %v shows no queueing at rho=0.9", c.MeanDelay)
	}
}

func TestQueueDelayCorrelatedUnderLoad(t *testing.T) {
	// Queue dynamics induce positive short-lag correlation without any
	// explicit AR parameter.
	q, err := NewQueueDelay(QueueConfig{
		Base:         10 * time.Millisecond,
		Service:      time.Millisecond,
		CrossRate:    160,
		CrossService: 5 * time.Millisecond, // ρ = 0.8
	}, sim.NewRNG(6, "qcorr"))
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = float64(q.Sample(time.Duration(i) * 50 * time.Millisecond))
	}
	if r1 := lag1Autocorr(xs); r1 < 0.2 {
		t.Errorf("lag-1 autocorrelation %v, want positive from queue dynamics", r1)
	}
}

package wan

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"wanfd/internal/sim"
	"wanfd/internal/stats"
)

func TestSampleGammaMoments(t *testing.T) {
	rng := sim.NewRNG(7, "gamma")
	const shape, scale = 2.0, 3.0
	var r stats.Running
	for i := 0; i < 200000; i++ {
		x := sampleGamma(rng, shape, scale)
		if x < 0 {
			t.Fatalf("gamma sample negative: %v", x)
		}
		r.Add(x)
	}
	wantMean := shape * scale
	wantVar := shape * scale * scale
	if math.Abs(r.Mean()-wantMean) > 0.1 {
		t.Errorf("gamma mean = %v, want ≈%v", r.Mean(), wantMean)
	}
	if math.Abs(r.Variance()-wantVar) > 0.5 {
		t.Errorf("gamma variance = %v, want ≈%v", r.Variance(), wantVar)
	}
}

func TestSampleGammaShapeBelowOne(t *testing.T) {
	rng := sim.NewRNG(7, "gamma-small")
	const shape, scale = 0.5, 2.0
	var r stats.Running
	for i := 0; i < 200000; i++ {
		x := sampleGamma(rng, shape, scale)
		if x < 0 {
			t.Fatalf("gamma sample negative: %v", x)
		}
		r.Add(x)
	}
	if math.Abs(r.Mean()-shape*scale) > 0.05 {
		t.Errorf("gamma(0.5) mean = %v, want ≈%v", r.Mean(), shape*scale)
	}
}

func TestSampleParetoBounds(t *testing.T) {
	rng := sim.NewRNG(7, "pareto")
	const lo, hi = 40.0, 145.0
	for i := 0; i < 10000; i++ {
		x := samplePareto(rng, 1.5, lo, hi)
		if x < lo-1e-9 || x > hi+1e-9 {
			t.Fatalf("pareto sample %v outside [%v,%v]", x, lo, hi)
		}
	}
}

func TestConstantDelay(t *testing.T) {
	m := &ConstantDelay{D: 5 * time.Millisecond}
	if m.Sample(0) != 5*time.Millisecond || m.Sample(time.Hour) != 5*time.Millisecond {
		t.Error("constant delay should always return D")
	}
}

func TestAR1GammaDelayValidation(t *testing.T) {
	rng := sim.NewRNG(1, "x")
	bad := []AR1GammaConfig{
		{Rho: -0.1, GammaShape: 1, GammaScale: 1},
		{Rho: 1.0, GammaShape: 1, GammaScale: 1},
		{Rho: 0.5, GammaShape: 0, GammaScale: 1},
		{Rho: 0.5, GammaShape: 1, GammaScale: 0},
		{Rho: 0.5, GammaShape: 1, GammaScale: 1, SpikeProb: -0.5},
		{Rho: 0.5, GammaShape: 1, GammaScale: 1, SpikeProb: 2},
		{Rho: 0.5, GammaShape: 1, GammaScale: 1, SpikeProb: 0.1}, // spike bounds unset
	}
	for i, cfg := range bad {
		if _, err := NewAR1GammaDelay(cfg, rng); err == nil {
			t.Errorf("config %d should have been rejected: %+v", i, cfg)
		}
	}
}

func TestAR1GammaDelayIsPositiveAndCapped(t *testing.T) {
	m, err := NewAR1GammaDelay(AR1GammaConfig{
		Base:       100 * time.Millisecond,
		Rho:        0.6,
		GammaShape: 1,
		GammaScale: 5,
		SpikeProb:  0.05,
		SpikeLo:    40 * time.Millisecond,
		SpikeHi:    400 * time.Millisecond,
		Cap:        200 * time.Millisecond,
	}, sim.NewRNG(3, "d"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		d := m.Sample(0)
		if d < 100*time.Millisecond {
			t.Fatalf("delay %v below base", d)
		}
		if d > 200*time.Millisecond {
			t.Fatalf("delay %v above cap", d)
		}
	}
}

func TestAR1GammaDelayIsCorrelated(t *testing.T) {
	m, err := NewAR1GammaDelay(AR1GammaConfig{
		Rho:        0.8,
		GammaShape: 1,
		GammaScale: 5,
	}, sim.NewRNG(3, "corr"))
	if err != nil {
		t.Fatal(err)
	}
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(m.Sample(0))
	}
	if r1 := lag1Autocorr(xs); r1 < 0.5 {
		t.Errorf("lag-1 autocorrelation = %v, want strongly positive for rho=0.8", r1)
	}
}

func lag1Autocorr(xs []float64) float64 {
	var r stats.Running
	for _, x := range xs {
		r.Add(x)
	}
	mean := r.Mean()
	var num, den float64
	for i := 0; i < len(xs)-1; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
	}
	for _, x := range xs {
		den += (x - mean) * (x - mean)
	}
	return num / den
}

func TestDiurnalDelayModulates(t *testing.T) {
	inner := &ConstantDelay{D: 100 * time.Millisecond}
	d, err := NewDiurnalDelay(inner, 50*time.Millisecond, 0.5, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At phase 0 the sinusoid is 0: unmodulated.
	if got := d.Sample(0); got != 100*time.Millisecond {
		t.Errorf("phase-0 sample = %v, want 100ms", got)
	}
	// At quarter period, sin = 1: variable part (50ms) scaled by 1.5.
	got := d.Sample(15 * time.Minute)
	want := 125 * time.Millisecond
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("quarter-period sample = %v, want ≈%v", got, want)
	}
	// At three-quarter period, sin = -1: variable part scaled by 0.5.
	got = d.Sample(45 * time.Minute)
	want = 75 * time.Millisecond
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("three-quarter sample = %v, want ≈%v", got, want)
	}
}

func TestDiurnalDelayValidation(t *testing.T) {
	inner := &ConstantDelay{D: time.Millisecond}
	if _, err := NewDiurnalDelay(inner, 0, 1.0, time.Hour, 0); err == nil {
		t.Error("amplitude 1.0 should be rejected")
	}
	if _, err := NewDiurnalDelay(inner, 0, 0.5, 0, 0); err == nil {
		t.Error("zero period should be rejected")
	}
}

func TestTraceDelayReplaysAndWraps(t *testing.T) {
	src := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	m, err := NewTraceDelay(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = time.Hour // model must have copied the slice
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		time.Millisecond, 2 * time.Millisecond,
	}
	for i, w := range want {
		if got := m.Sample(0); got != w {
			t.Errorf("sample %d = %v, want %v", i, got, w)
		}
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
	if _, err := NewTraceDelay(nil); err == nil {
		t.Error("empty trace should be rejected")
	}
}

func TestBernoulliLoss(t *testing.T) {
	if _, err := NewBernoulliLoss(1.5, sim.NewRNG(1, "l")); err == nil {
		t.Error("p > 1 should be rejected")
	}
	m, err := NewBernoulliLoss(0.25, sim.NewRNG(1, "l"))
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Lose() {
			lost++
		}
	}
	rate := float64(lost) / n
	if math.Abs(rate-0.25) > 0.01 {
		t.Errorf("loss rate = %v, want ≈0.25", rate)
	}
}

func TestGilbertElliottLoss(t *testing.T) {
	cfg := GilbertElliottConfig{
		PGoodToBad: 0.01,
		PBadToGood: 0.1,
		LossGood:   0.001,
		LossBad:    0.5,
	}
	m, err := NewGilbertElliottLoss(cfg, sim.NewRNG(9, "ge"))
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	const n = 500000
	for i := 0; i < n; i++ {
		if m.Lose() {
			lost++
		}
	}
	rate := float64(lost) / n
	want := m.StationaryLoss()
	if math.Abs(rate-want) > 0.005 {
		t.Errorf("observed loss %v, stationary prediction %v", rate, want)
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliottLoss(GilbertElliottConfig{PGoodToBad: -1}, sim.NewRNG(1, "x")); err == nil {
		t.Error("negative probability should be rejected")
	}
}

func TestGilbertElliottStationaryDegenerate(t *testing.T) {
	m, err := NewGilbertElliottLoss(GilbertElliottConfig{LossGood: 0.2}, sim.NewRNG(1, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.StationaryLoss(); got != 0.2 {
		t.Errorf("degenerate stationary loss = %v, want 0.2 (good-state loss)", got)
	}
}

func TestChannelRequiresDelayModel(t *testing.T) {
	if _, err := NewChannel(ChannelConfig{}); err == nil {
		t.Error("channel without delay model should be rejected")
	}
}

func TestChannelTransmitAndStats(t *testing.T) {
	loss, err := NewBernoulliLoss(0.5, sim.NewRNG(11, "loss"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChannel(ChannelConfig{
		Delay: &ConstantDelay{D: 10 * time.Millisecond},
		Loss:  loss,
	})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	const n = 10000
	for i := 0; i < n; i++ {
		at, ok := c.Transmit(time.Duration(i) * time.Second)
		if ok {
			delivered++
			want := time.Duration(i)*time.Second + 10*time.Millisecond
			if at != want {
				t.Fatalf("delivery %v, want %v", at, want)
			}
		}
	}
	sent, dropped := c.Stats()
	if sent != n {
		t.Errorf("sent = %d, want %d", sent, n)
	}
	if int(dropped) != n-delivered {
		t.Errorf("dropped = %d, delivered = %d, inconsistent", dropped, delivered)
	}
	if math.Abs(c.LossRate()-0.5) > 0.05 {
		t.Errorf("loss rate = %v, want ≈0.5", c.LossRate())
	}
}

func TestChannelLossRateEmpty(t *testing.T) {
	c, err := NewChannel(ChannelConfig{Delay: &ConstantDelay{D: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if c.LossRate() != 0 {
		t.Errorf("loss rate on fresh channel = %v, want 0", c.LossRate())
	}
}

func TestChannelFIFOOrdering(t *testing.T) {
	trace, err := NewTraceDelay([]time.Duration{
		100 * time.Millisecond, 10 * time.Millisecond, 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChannel(ChannelConfig{Delay: trace, FIFO: true})
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for i := 0; i < 3; i++ {
		at, ok := c.Transmit(time.Duration(i) * time.Millisecond)
		if !ok {
			t.Fatal("lossless channel dropped a packet")
		}
		if at < last {
			t.Fatalf("FIFO violated: delivery %v after %v", at, last)
		}
		last = at
	}
}

func TestChannelNonFIFOReorders(t *testing.T) {
	trace, err := NewTraceDelay([]time.Duration{
		100 * time.Millisecond, 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChannel(ChannelConfig{Delay: trace})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Transmit(0)
	b, _ := c.Transmit(time.Millisecond)
	if !(b < a) {
		t.Errorf("expected reordering: second delivery %v, first %v", b, a)
	}
}

func TestItalyJapanPresetMatchesTable4(t *testing.T) {
	c, err := NewPresetChannel(PresetItalyJapan, 1234, "test")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Characterize(c, 100000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	msec := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if m := msec(ch.MeanDelay); m < 200 || m > 214 {
		t.Errorf("mean delay %.1f ms, want ≈206.6 (Table 4)", m)
	}
	if s := msec(ch.StdDevDelay); s < 4 || s > 12 {
		t.Errorf("stddev %.1f ms, want ≈7.6 (Table 4)", s)
	}
	if m := msec(ch.MinDelay); m < 192 || m > 196 {
		t.Errorf("min delay %.1f ms, want ≈192 (Table 4)", m)
	}
	if m := msec(ch.MaxDelay); m < 250 || m > 341 {
		t.Errorf("max delay %.1f ms, want ≈340 (Table 4)", m)
	}
	if ch.LossRate >= 0.01 {
		t.Errorf("loss rate %.4f, want < 1%% (Table 4)", ch.LossRate)
	}
	if ch.Table() == "" {
		t.Error("Table rendering empty")
	}
}

func TestPresetChannelsDiffer(t *testing.T) {
	for _, p := range []Preset{PresetItalyJapan, PresetLAN, PresetLossyMobile} {
		c, err := NewPresetChannel(p, 5, "s")
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if _, err := Characterize(c, 1000, time.Second); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
	_, err := NewPresetChannel(Preset(99), 5, "s")
	var upe *UnknownPresetError
	if !errors.As(err, &upe) {
		t.Errorf("unknown preset error = %v, want UnknownPresetError", err)
	}
}

func TestPresetDeterminism(t *testing.T) {
	collect := func() []time.Duration {
		c, err := NewPresetChannel(PresetItalyJapan, 77, "det")
		if err != nil {
			t.Fatal(err)
		}
		ds, err := CollectDelays(c, 500, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCharacterizeValidation(t *testing.T) {
	c, err := NewChannel(ChannelConfig{Delay: &ConstantDelay{D: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Characterize(c, 0, time.Second); err == nil {
		t.Error("n=0 should be rejected")
	}
	if _, err := Characterize(c, 10, 0); err == nil {
		t.Error("eta=0 should be rejected")
	}
	if _, err := CollectDelays(c, 0, time.Second); err == nil {
		t.Error("CollectDelays n=0 should be rejected")
	}
	if _, err := CollectDelays(c, 10, 0); err == nil {
		t.Error("CollectDelays eta=0 should be rejected")
	}
}

// Property: a lossless FIFO channel delivers every packet with monotone
// non-decreasing delivery times regardless of the delay sequence.
func TestChannelFIFOMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		for i, v := range raw {
			ds[i] = time.Duration(v) * time.Microsecond
		}
		trace, err := NewTraceDelay(ds)
		if err != nil {
			return false
		}
		c, err := NewChannel(ChannelConfig{Delay: trace, FIFO: true})
		if err != nil {
			return false
		}
		var last time.Duration
		for i := range raw {
			at, ok := c.Transmit(time.Duration(i) * time.Millisecond)
			if !ok || at < last {
				return false
			}
			last = at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAR1GammaEpisodeValidation(t *testing.T) {
	rng := sim.NewRNG(1, "x")
	bad := []AR1GammaConfig{
		{Rho: 0.5, GammaShape: 1, GammaScale: 1, EpisodeProb: -0.1},
		{Rho: 0.5, GammaShape: 1, GammaScale: 1, EpisodeProb: 2},
		{Rho: 0.5, GammaShape: 1, GammaScale: 1, EpisodeProb: 0.1}, // bounds unset
		{Rho: 0.5, GammaShape: 1, GammaScale: 1, EpisodeProb: 0.1,
			EpisodeLo: 10 * time.Millisecond, EpisodeHi: 20 * time.Millisecond, EpisodeDecay: 1.0},
		{Rho: 0.5, GammaShape: 1, GammaScale: 1, EpisodeProb: 0.1,
			EpisodeLo: 10 * time.Millisecond, EpisodeHi: 20 * time.Millisecond, EpisodeDecay: -0.5},
	}
	for i, cfg := range bad {
		if _, err := NewAR1GammaDelay(cfg, rng); err == nil {
			t.Errorf("episode config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestAR1GammaEpisodesRaiseDelay(t *testing.T) {
	base := AR1GammaConfig{Rho: 0.5, GammaShape: 1, GammaScale: 1}
	withEpisodes := base
	withEpisodes.EpisodeProb = 0.01
	withEpisodes.EpisodeLo = 20 * time.Millisecond
	withEpisodes.EpisodeHi = 40 * time.Millisecond
	withEpisodes.EpisodeDecay = 0.99

	meanOf := func(cfg AR1GammaConfig) float64 {
		m, err := NewAR1GammaDelay(cfg, sim.NewRNG(9, "ep"))
		if err != nil {
			t.Fatal(err)
		}
		var r stats.Running
		for i := 0; i < 30000; i++ {
			r.Add(float64(m.Sample(0)))
		}
		return r.Mean()
	}
	if !(meanOf(withEpisodes) > meanOf(base)*1.5) {
		t.Error("episodes should raise the mean delay substantially")
	}
}

func TestGilbertElliottInBadState(t *testing.T) {
	m, err := NewGilbertElliottLoss(GilbertElliottConfig{
		PGoodToBad: 1, PBadToGood: 0, LossBad: 1,
	}, sim.NewRNG(1, "ge2"))
	if err != nil {
		t.Fatal(err)
	}
	if m.InBadState() {
		t.Error("should start in the good state")
	}
	m.Lose()
	if !m.InBadState() {
		t.Error("P(g→b)=1 should enter the bad state on the first packet")
	}
}

func TestPresetStringsAndErrors(t *testing.T) {
	for p, want := range map[Preset]string{
		PresetItalyJapan:  "italy-japan",
		PresetLAN:         "lan",
		PresetLossyMobile: "lossy-mobile",
		PresetBottleneck:  "bottleneck",
		Preset(99):        "unknown",
	} {
		if got := p.String(); got != want {
			t.Errorf("Preset(%d).String() = %q, want %q", p, got, want)
		}
	}
	err := &UnknownPresetError{Preset: Preset(99)}
	if err.Error() == "" {
		t.Error("error string empty")
	}
}

func TestBottleneckPreset(t *testing.T) {
	c, err := NewPresetChannel(PresetBottleneck, 7, "t")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Characterize(c, 20000, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ch.MinDelay < 40*time.Millisecond {
		t.Errorf("min %v below the 40ms floor", ch.MinDelay)
	}
	if ch.MeanDelay < 45*time.Millisecond {
		t.Errorf("mean %v shows no queueing at 80%% utilization", ch.MeanDelay)
	}
	if ch.MaxDelay > 545*time.Millisecond {
		t.Errorf("max %v exceeds base+cap", ch.MaxDelay)
	}
	if ch.LossRate > 0.01 {
		t.Errorf("loss %v, want ≈0.2%%", ch.LossRate)
	}
}

func TestCharacterizePercentiles(t *testing.T) {
	c, err := NewPresetChannel(PresetItalyJapan, 3, "pct")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Characterize(c, 20000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !(ch.MinDelay <= ch.P50Delay && ch.P50Delay <= ch.P95Delay &&
		ch.P95Delay <= ch.P99Delay && ch.P99Delay <= ch.MaxDelay) {
		t.Errorf("percentile ordering broken: %+v", ch)
	}
	if ch.P50Delay < 190*time.Millisecond {
		t.Errorf("median %v implausible", ch.P50Delay)
	}
}

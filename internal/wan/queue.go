package wan

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// QueueDelay is a mechanistic delay model: the path's bottleneck router as
// a single FIFO server shared with Poisson cross-traffic. Each heartbeat's
// delay is the propagation floor plus the unfinished work queued ahead of
// it plus its own service time. Unlike the statistical AR1Gamma family,
// burstiness and correlation *emerge* from the queue dynamics (utilization
// ρ = CrossRate × CrossService controls them), which makes the model useful
// for ablations where one wants to turn a physical knob instead of a
// distribution parameter.
type QueueDelay struct {
	base      time.Duration
	serviceMs float64
	rateMs    float64 // cross-traffic arrivals per ms
	crossMs   float64 // mean service demand per cross packet, ms
	capMs     float64
	rng       *rand.Rand

	backlogMs float64
	lastMs    float64
	primed    bool
}

// QueueConfig parameterizes QueueDelay.
type QueueConfig struct {
	// Base is the propagation floor.
	Base time.Duration
	// Service is the heartbeat's own transmission/service time.
	Service time.Duration
	// CrossRate is the cross-traffic arrival rate, packets per second.
	CrossRate float64
	// CrossService is the mean service demand per cross-traffic packet
	// (exponentially distributed).
	CrossService time.Duration
	// Cap bounds the total delay (0 = none).
	Cap time.Duration
}

// Utilization returns ρ = CrossRate × E[CrossService]; the queue is stable
// only for ρ < 1.
func (c QueueConfig) Utilization() float64 {
	return c.CrossRate * c.CrossService.Seconds()
}

// NewQueueDelay validates cfg (requiring a stable queue) and builds the
// model.
func NewQueueDelay(cfg QueueConfig, rng *rand.Rand) (*QueueDelay, error) {
	if cfg.Service <= 0 {
		return nil, fmt.Errorf("wan: queue service time must be positive, got %v", cfg.Service)
	}
	if cfg.CrossRate < 0 {
		return nil, fmt.Errorf("wan: negative cross-traffic rate %v", cfg.CrossRate)
	}
	if cfg.CrossRate > 0 && cfg.CrossService <= 0 {
		return nil, fmt.Errorf("wan: cross-traffic needs a positive mean service, got %v", cfg.CrossService)
	}
	if rho := cfg.Utilization(); rho >= 1 {
		return nil, fmt.Errorf("wan: queue unstable (utilization %.3f >= 1)", rho)
	}
	if rng == nil {
		return nil, fmt.Errorf("wan: queue delay needs a random source")
	}
	return &QueueDelay{
		base:      cfg.Base,
		serviceMs: float64(cfg.Service) / float64(time.Millisecond),
		rateMs:    cfg.CrossRate / 1000,
		crossMs:   float64(cfg.CrossService) / float64(time.Millisecond),
		capMs:     float64(cfg.Cap) / float64(time.Millisecond),
		rng:       rng,
	}, nil
}

var _ DelayModel = (*QueueDelay)(nil)

// Sample advances the queue to sendTime (draining at unit rate, admitting
// the cross-traffic that arrived in the gap) and returns this packet's
// delay. Samples must be taken with non-decreasing send times; an earlier
// send time is treated as simultaneous with the previous one.
func (q *QueueDelay) Sample(sendTime time.Duration) time.Duration {
	nowMs := float64(sendTime) / float64(time.Millisecond)
	if !q.primed {
		q.lastMs, q.primed = nowMs, true
	}
	elapsed := nowMs - q.lastMs
	if elapsed < 0 {
		elapsed = 0
	}
	q.lastMs = nowMs

	// Replay the gap exactly: cross-traffic packets arrive at Poisson
	// times within it, each adding exponential work, while the server
	// drains at unit rate between arrivals.
	q.advance(elapsed)

	delayMs := q.backlogMs + q.serviceMs
	q.backlogMs += q.serviceMs
	if q.capMs > 0 && delayMs > q.capMs {
		delayMs = q.capMs
	}
	return q.base + time.Duration(delayMs*float64(time.Millisecond))
}

// advance replays elapsed ms of queue evolution: Poisson cross-traffic
// arrivals (conditioned on the count, arrival times are iid uniform over
// the gap) interleaved with unit-rate draining.
func (q *QueueDelay) advance(elapsed float64) {
	if elapsed <= 0 {
		return
	}
	lambda := q.rateMs * elapsed
	n := samplePoisson(q.rng, lambda)
	const maxArrivals = 100000 // guard against pathological gaps
	if n > maxArrivals {
		n = maxArrivals
	}
	if n == 0 {
		q.backlogMs -= elapsed
		if q.backlogMs < 0 {
			q.backlogMs = 0
		}
		return
	}
	times := make([]float64, n)
	for i := range times {
		times[i] = q.rng.Float64() * elapsed
	}
	sort.Float64s(times)
	prev := 0.0
	for _, at := range times {
		q.backlogMs -= at - prev
		if q.backlogMs < 0 {
			q.backlogMs = 0
		}
		q.backlogMs += q.rng.ExpFloat64() * q.crossMs
		prev = at
	}
	q.backlogMs -= elapsed - prev
	if q.backlogMs < 0 {
		q.backlogMs = 0
	}
}

// Backlog returns the queue's current unfinished work (diagnostics).
func (q *QueueDelay) Backlog() time.Duration {
	return time.Duration(q.backlogMs * float64(time.Millisecond))
}

// samplePoisson draws from Poisson(lambda) — Knuth's method for small
// lambda, a clamped normal approximation beyond.
func samplePoisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

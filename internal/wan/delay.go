package wan

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// DelayModel produces the one-way transmission delay experienced by
// successive packets. Sample is called once per transmitted packet, in send
// order, with the virtual send time; implementations may be stateful
// (temporal correlation) and own their random stream.
type DelayModel interface {
	Sample(sendTime time.Duration) time.Duration
}

// ConstantDelay is a degenerate delay model useful in tests.
type ConstantDelay struct {
	// D is the delay applied to every packet.
	D time.Duration
}

var _ DelayModel = (*ConstantDelay)(nil)

// Sample returns the constant delay.
func (c *ConstantDelay) Sample(time.Duration) time.Duration { return c.D }

// AR1GammaDelay models a one-way delay as
//
//	delay_i = Base + q_i + s_i (+ spike with probability SpikeProb)
//	q_i     = Rho*q_{i-1} + Gamma(Shape, Scale)
//	s_i     = EpisodeDecay*s_{i-1} (+ jump ~ U[EpisodeLo, EpisodeHi]
//	          with probability EpisodeProb)
//
// i.e. a propagation floor plus a positively-correlated fast queueing
// component with Gamma innovations, a slow congestion level s that jumps up
// in rare episodes and decays over many packets, and a bounded-Pareto spike
// mixture for the heavy tail.
//
// The slow component makes the channel nonstationary at the timescale of
// one experiment run — the property of real WAN paths behind the paper's
// finding that long-memory predictors (MEAN) yield the longest detection
// times: they keep charging for congestion that has long since decayed.
// This is the channel family used to emulate the paper's Italy–Japan link;
// see PresetItalyJapan for the calibrated parameters.
type AR1GammaDelay struct {
	base         time.Duration
	rho          float64
	shape        float64
	scale        float64
	spikeProb    float64
	spikeLo      float64 // ms
	spikeHi      float64 // ms
	episodeProb  float64
	episodeLo    float64 // ms
	episodeHi    float64 // ms
	episodeDecay float64
	cap          time.Duration

	rng *rand.Rand
	q   float64 // fast queueing delay, ms
	s   float64 // slow congestion level, ms
}

// AR1GammaConfig parameterizes AR1GammaDelay. All delay magnitudes are in
// time.Duration; internal arithmetic is in float64 milliseconds.
type AR1GammaConfig struct {
	Base       time.Duration // propagation floor (paper: 192 ms)
	Rho        float64       // AR(1) coefficient in [0, 1)
	GammaShape float64       // innovation shape (> 0)
	GammaScale float64       // innovation scale in ms (> 0)
	SpikeProb  float64       // per-packet probability of a delay spike
	SpikeLo    time.Duration // spike magnitude lower bound
	SpikeHi    time.Duration // spike magnitude upper bound
	Cap        time.Duration // hard upper bound on total delay (0 = none)

	// Slow congestion episodes (0 values disable the component).
	EpisodeProb  float64       // per-packet probability of a congestion jump
	EpisodeLo    time.Duration // jump magnitude lower bound
	EpisodeHi    time.Duration // jump magnitude upper bound
	EpisodeDecay float64       // per-packet decay of the level, in [0, 1)
}

// NewAR1GammaDelay validates cfg and builds the model with its own random
// stream.
func NewAR1GammaDelay(cfg AR1GammaConfig, rng *rand.Rand) (*AR1GammaDelay, error) {
	if cfg.Rho < 0 || cfg.Rho >= 1 {
		return nil, fmt.Errorf("wan: Rho %v out of [0,1)", cfg.Rho)
	}
	if cfg.GammaShape <= 0 || cfg.GammaScale <= 0 {
		return nil, fmt.Errorf("wan: gamma shape/scale must be positive, got %v/%v",
			cfg.GammaShape, cfg.GammaScale)
	}
	if cfg.SpikeProb < 0 || cfg.SpikeProb > 1 {
		return nil, fmt.Errorf("wan: SpikeProb %v out of [0,1]", cfg.SpikeProb)
	}
	if cfg.SpikeProb > 0 && !(cfg.SpikeHi > cfg.SpikeLo && cfg.SpikeLo > 0) {
		return nil, fmt.Errorf("wan: spike bounds must satisfy 0 < lo < hi, got %v/%v",
			cfg.SpikeLo, cfg.SpikeHi)
	}
	if cfg.EpisodeProb < 0 || cfg.EpisodeProb > 1 {
		return nil, fmt.Errorf("wan: EpisodeProb %v out of [0,1]", cfg.EpisodeProb)
	}
	if cfg.EpisodeProb > 0 {
		if !(cfg.EpisodeHi > cfg.EpisodeLo && cfg.EpisodeLo > 0) {
			return nil, fmt.Errorf("wan: episode bounds must satisfy 0 < lo < hi, got %v/%v",
				cfg.EpisodeLo, cfg.EpisodeHi)
		}
		if cfg.EpisodeDecay < 0 || cfg.EpisodeDecay >= 1 {
			return nil, fmt.Errorf("wan: EpisodeDecay %v out of [0,1)", cfg.EpisodeDecay)
		}
	}
	innovMean := cfg.GammaShape * cfg.GammaScale
	m := &AR1GammaDelay{
		base:         cfg.Base,
		rho:          cfg.Rho,
		shape:        cfg.GammaShape,
		scale:        cfg.GammaScale,
		spikeProb:    cfg.SpikeProb,
		spikeLo:      float64(cfg.SpikeLo) / float64(time.Millisecond),
		spikeHi:      float64(cfg.SpikeHi) / float64(time.Millisecond),
		episodeProb:  cfg.EpisodeProb,
		episodeLo:    float64(cfg.EpisodeLo) / float64(time.Millisecond),
		episodeHi:    float64(cfg.EpisodeHi) / float64(time.Millisecond),
		episodeDecay: cfg.EpisodeDecay,
		cap:          cfg.Cap,
		rng:          rng,
		// Start the queue at its stationary mean so the series has no
		// warm-up transient.
		q: innovMean / (1 - cfg.Rho),
	}
	// Burn in the slow episode level to a stationary draw: starting every
	// run at s = 0 would make early-run conditions systematically better
	// than the long-run channel.
	if m.episodeProb > 0 {
		burn := int(3 / ((1 - m.episodeDecay) * m.episodeProb))
		const maxBurn = 100000
		if burn > maxBurn {
			burn = maxBurn
		}
		for i := 0; i < burn; i++ {
			m.s *= m.episodeDecay
			if m.rng.Float64() < m.episodeProb {
				m.s += m.episodeLo + m.rng.Float64()*(m.episodeHi-m.episodeLo)
			}
		}
	}
	return m, nil
}

var _ DelayModel = (*AR1GammaDelay)(nil)

// Sample draws the next correlated delay.
func (m *AR1GammaDelay) Sample(time.Duration) time.Duration {
	innov := sampleGamma(m.rng, m.shape, m.scale)
	m.q = m.rho*m.q + innov
	if m.q < 0 {
		m.q = 0
	}
	if m.episodeProb > 0 {
		m.s *= m.episodeDecay
		if m.rng.Float64() < m.episodeProb {
			m.s += m.episodeLo + m.rng.Float64()*(m.episodeHi-m.episodeLo)
		}
	}
	ms := m.q + m.s
	if m.spikeProb > 0 && m.rng.Float64() < m.spikeProb {
		ms += samplePareto(m.rng, 1.5, m.spikeLo, m.spikeHi)
	}
	d := m.base + time.Duration(ms*float64(time.Millisecond))
	if m.cap > 0 && d > m.cap {
		d = m.cap
	}
	return d
}

// DiurnalDelay wraps another delay model and modulates the variable part of
// the delay (anything above the floor) with a slow sinusoid, emulating the
// congestion cycles (peak hours vs. night, weekday vs. weekend) the paper
// names as the reason adaptive detectors suit WANs.
type DiurnalDelay struct {
	inner     DelayModel
	floor     time.Duration
	amplitude float64       // relative modulation of the variable part, in [0, 1)
	period    time.Duration // modulation period
	phase     float64       // starting phase, radians
}

// NewDiurnalDelay wraps inner. amplitude must be in [0, 1) and period
// positive; floor is the propagation delay left unmodulated. phase is the
// starting phase in radians: 0 starts at the neutral point of the cycle,
// π/2 starts at the congestion peak (so a run shorter than half the period
// sees a monotonically falling congestion flank).
func NewDiurnalDelay(inner DelayModel, floor time.Duration, amplitude float64, period time.Duration, phase float64) (*DiurnalDelay, error) {
	if amplitude < 0 || amplitude >= 1 {
		return nil, fmt.Errorf("wan: diurnal amplitude %v out of [0,1)", amplitude)
	}
	if period <= 0 {
		return nil, fmt.Errorf("wan: diurnal period must be positive, got %v", period)
	}
	return &DiurnalDelay{inner: inner, floor: floor, amplitude: amplitude, period: period, phase: phase}, nil
}

var _ DelayModel = (*DiurnalDelay)(nil)

// Sample modulates the inner model's variable delay component.
func (d *DiurnalDelay) Sample(sendTime time.Duration) time.Duration {
	raw := d.inner.Sample(sendTime)
	variable := raw - d.floor
	if variable < 0 {
		return raw
	}
	phase := d.phase + 2*math.Pi*float64(sendTime)/float64(d.period)
	factor := 1 + d.amplitude*math.Sin(phase)
	return d.floor + time.Duration(float64(variable)*factor)
}

// TraceDelay replays a recorded sequence of delays, cycling when exhausted.
// It gives bit-identical reruns of an experiment from a stored trace.
type TraceDelay struct {
	delays []time.Duration
	next   int
}

// NewTraceDelay builds a replay model over a non-empty delay sequence. The
// slice is copied.
func NewTraceDelay(delays []time.Duration) (*TraceDelay, error) {
	if len(delays) == 0 {
		return nil, fmt.Errorf("wan: empty delay trace")
	}
	cp := make([]time.Duration, len(delays))
	copy(cp, delays)
	return &TraceDelay{delays: cp}, nil
}

var _ DelayModel = (*TraceDelay)(nil)

// Sample returns the next recorded delay, wrapping around at the end.
func (t *TraceDelay) Sample(time.Duration) time.Duration {
	d := t.delays[t.next]
	t.next = (t.next + 1) % len(t.delays)
	return d
}

// Len returns the number of recorded delays.
func (t *TraceDelay) Len() int { return len(t.delays) }

package wanfd

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"wanfd/internal/neko"
)

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

func TestMultiMonitorDynamicMembership(t *testing.T) {
	addrs := freeUDPPorts(t, 3)
	monAddr, aAddr, bAddr := addrs[0], addrs[1], addrs[2]
	const eta = 25 * time.Millisecond

	mon, err := NewMultiMonitor(monAddr, WithEta(eta))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if n := mon.Peers(); n != 0 {
		t.Fatalf("fresh monitor has %d peers", n)
	}

	if err := mon.AddPeer("alpha", aAddr); err != nil {
		t.Fatal(err)
	}
	if err := mon.AddPeer("alpha", "127.0.0.1:1"); err == nil {
		t.Error("duplicate peer name accepted")
	}
	if err := mon.AddPeer("alias", aAddr); err == nil {
		t.Error("duplicate peer address accepted")
	}
	if err := mon.AddPeer("", bAddr); err == nil {
		t.Error("empty peer name accepted")
	}
	if err := mon.AddPeer("beta", bAddr); err != nil {
		t.Fatal(err)
	}
	if n := mon.Peers(); n != 2 {
		t.Fatalf("peers = %d, want 2", n)
	}

	hbA, err := RunHeartbeater(HeartbeaterConfig{Listen: aAddr, Remote: monAddr, Eta: eta})
	if err != nil {
		t.Fatal(err)
	}
	defer hbA.Close()
	hbB, err := RunHeartbeater(HeartbeaterConfig{Listen: bAddr, Remote: monAddr, Eta: eta})
	if err != nil {
		t.Fatal(err)
	}
	defer hbB.Close()

	if !waitFor(t, 3*time.Second, func() bool {
		s, err := mon.PeerStatusOf("alpha")
		if err != nil {
			return false
		}
		b, errB := mon.PeerStatusOf("beta")
		return errB == nil && s.Heartbeats >= 5 && b.Heartbeats >= 5
	}) {
		t.Fatal("added peers never delivered heartbeats")
	}

	st := mon.Status()
	if len(st) != 2 || st[0].Peer != "alpha" || st[1].Peer != "beta" {
		t.Fatalf("status = %+v, want [alpha beta]", st)
	}
	snap := mon.Snapshot()
	if snap.Peers != 2 || snap.Trusted != 2 || snap.Suspected != 0 {
		t.Errorf("snapshot %+v, want 2 trusted peers", snap)
	}
	if snap.Totals.Heartbeats < 10 {
		t.Errorf("snapshot totals %+v, want >= 10 heartbeats", snap.Totals)
	}
	if snap.Uptime <= 0 {
		t.Errorf("snapshot uptime %v", snap.Uptime)
	}

	// Removing one peer must not disturb the other.
	if err := mon.RemovePeer("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := mon.RemovePeer("alpha"); err == nil {
		t.Error("removing an unknown peer should fail")
	}
	if _, err := mon.Suspected("alpha"); err == nil {
		t.Error("removed peer still queryable")
	}
	before, err := mon.PeerStatusOf("beta")
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 3*time.Second, func() bool {
		b, err := mon.PeerStatusOf("beta")
		return err == nil && b.Heartbeats > before.Heartbeats && !b.Suspected
	}) {
		t.Fatal("surviving peer's detector disturbed by removal")
	}
}

// TestMultiMonitorReaddFreshDetector is the restart/readdress regression:
// a peer removed while suspected and re-added under the same name (and
// address) must get a brand-new detector with no stale suspicion state.
func TestMultiMonitorReaddFreshDetector(t *testing.T) {
	addrs := freeUDPPorts(t, 2)
	monAddr, aAddr := addrs[0], addrs[1]
	const eta = 20 * time.Millisecond

	mon, err := NewMultiMonitor(monAddr, WithEta(eta), WithPeer("db", aAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	hb, err := RunHeartbeater(HeartbeaterConfig{Listen: aAddr, Remote: monAddr, Eta: eta})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	_ = hb.Close()
	if !waitFor(t, 3*time.Second, func() bool {
		s, _ := mon.Suspected("db")
		return s
	}) {
		t.Fatal("dead peer never suspected")
	}

	if err := mon.RemovePeer("db"); err != nil {
		t.Fatal(err)
	}
	if err := mon.AddPeer("db", aAddr); err != nil {
		t.Fatal(err)
	}
	s, err := mon.PeerStatusOf("db")
	if err != nil {
		t.Fatal(err)
	}
	if s.Suspected {
		t.Error("re-added peer inherited stale suspicion")
	}
	if s.DetectorStats != (DetectorStats{}) {
		t.Errorf("re-added peer inherited stale counters %+v", s.DetectorStats)
	}

	// The restarted process heartbeats again from the same address.
	hb2, err := RunHeartbeater(HeartbeaterConfig{Listen: aAddr, Remote: monAddr, Eta: eta})
	if err != nil {
		t.Fatal(err)
	}
	defer hb2.Close()
	if !waitFor(t, 3*time.Second, func() bool {
		s, err := mon.PeerStatusOf("db")
		return err == nil && s.Heartbeats >= 5 && !s.Suspected
	}) {
		t.Fatal("re-added peer not monitored afresh")
	}
}

// TestMultiMonitorChurnTimerLeak is the scheduler-leak regression: after
// add/heartbeat/remove cycles no deadline may stay queued on the shard
// timing wheels (RemovePeer's detector Stop must unlink synchronously) and
// every lazy wheel driver must exit once its shard empties, returning the
// process to its pre-churn goroutine count.
func TestMultiMonitorChurnTimerLeak(t *testing.T) {
	addrs := freeUDPPorts(t, 1)
	// A long eta keeps the armed deadlines comfortably in the future, so
	// the mid-cycle queue-depth assertion races with nothing.
	mon, err := NewMultiMonitor(addrs[0], WithEta(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if st := mon.SchedulerStats(); st.Wheels != len(mon.shards) || st.Timers != 0 {
		t.Fatalf("fresh monitor scheduler stats %+v, want %d idle wheels", st, len(mon.shards))
	}
	baseline := runtime.NumGoroutine()

	const (
		cycles = 3
		peers  = 64
	)
	for c := 0; c < cycles; c++ {
		names := make([]string, peers)
		for i := range names {
			names[i] = fmt.Sprintf("churn-%d-%d", c, i)
			if err := mon.AddPeer(names[i], fmt.Sprintf("127.0.0.1:%d", 30001+i)); err != nil {
				t.Fatal(err)
			}
		}
		// One heartbeat per peer arms its detector deadline on the shard
		// wheel. Process ids are assigned sequentially from the monitor's
		// own id, in AddPeer order (same convention the cluster benchmark
		// relies on).
		now := mon.ctx.Clock.Now()
		for i := range names {
			mon.router.Receive(&neko.Message{
				Type:   neko.MsgHeartbeat,
				From:   multiMonitorID + 1 + neko.ProcessID(c*peers+i),
				Seq:    1,
				SentAt: now,
			})
		}
		if st := mon.SchedulerStats(); st.Timers != peers {
			t.Fatalf("cycle %d: %d deadlines queued after heartbeats, want %d", c, st.Timers, peers)
		}
		for _, name := range names {
			if err := mon.RemovePeer(name); err != nil {
				t.Fatal(err)
			}
		}
		if st := mon.SchedulerStats(); st.Timers != 0 {
			t.Fatalf("cycle %d: %d deadlines leaked after removal", c, st.Timers)
		}
	}

	// The shard drivers park-then-exit asynchronously after their last
	// timer is stopped; wait for the goroutine count to drain back.
	if !waitFor(t, 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseline
	}) {
		t.Errorf("goroutines leaked after churn: %d, baseline %d",
			runtime.NumGoroutine(), baseline)
	}
}

// TestMultiMonitorChurnRace hammers queries concurrently with membership
// churn; under -race it is the regression test for the sharded peer table.
func TestMultiMonitorChurnRace(t *testing.T) {
	addrs := freeUDPPorts(t, 1)
	mon, err := NewMultiMonitor(addrs[0], WithEta(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	const (
		writers = 4
		readers = 4
		rounds  = 250
		cycle   = 16
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("peer-%d-%d", w, i%cycle)
				addr := fmt.Sprintf("127.0.0.1:%d", 20000+w*cycle+i%cycle)
				if err := mon.AddPeer(name, addr); err != nil {
					t.Errorf("add %s: %v", name, err)
					return
				}
				if _, err := mon.Suspected(name); err != nil {
					t.Errorf("query %s: %v", name, err)
					return
				}
				if err := mon.RemovePeer(name); err != nil {
					t.Errorf("remove %s: %v", name, err)
					return
				}
			}
		}()
	}
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = mon.Status()
				_ = mon.Snapshot()
				_ = mon.Peers()
				_, _ = mon.Suspected("peer-0-0")
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if n := mon.Peers(); n != 0 {
		t.Errorf("peers leaked after churn: %d", n)
	}
}

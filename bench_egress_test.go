package wanfd

// Egress-path benchmarks for the batched send pipeline: one op is one
// heartbeat carried from Send to the kernel — encode into a pooled buffer,
// per-shard ring hand-off, destination resolution under one peer-table
// lock per batch, and a sendmmsg flush (linux; batch-of-one elsewhere).
// "batched" is the default pipeline; "classic" is the per-datagram
// baseline (one encode, one WriteToUDPAddrPort syscall per send, on the
// caller's goroutine). Destinations are unique loopback addresses with no
// listener: the kernel pays the full local delivery attempt either way,
// so the measured difference is what the egress pipeline itself buys.

import (
	"encoding/binary"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"wanfd/internal/neko"
	"wanfd/internal/transport"
)

// noopReceiver satisfies neko.Receiver for endpoints that only send.
type noopReceiver struct{}

func (noopReceiver) Receive(*neko.Message) {}

// benchEgressLag bounds how far producers may run ahead of the flusher —
// an eighth of the total ring capacity, so round-robin traffic never
// overflows a shard.
const benchEgressLag = 1024

// runEgressBench measures delivered send throughput at the transport
// layer: heartbeats round-robin over the peer set, production lag-bounded
// against the flush counters, final flush inside the timed region. The
// run fails on any ring drop or send error — ns/op is lossless
// throughput.
func runEgressBench(b *testing.B, peers int, batched bool) {
	n, err := transport.NewUDPNetwork(transport.UDPConfig{
		LocalID:         1,
		Listen:          "127.0.0.1:0",
		UnbatchedEgress: !batched,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	base := neko.ProcessID(2)
	for i := 0; i < peers; i++ {
		if err := n.AddPeer(base+neko.ProcessID(i), benchPeerAddr(i)); err != nil {
			b.Fatal(err)
		}
	}
	sender, err := n.Attach(1, noopReceiver{})
	if err != nil {
		b.Fatal(err)
	}
	flushed := func() int {
		st := n.EgressStats()
		return int(st.Packets + st.RingDrops + st.SendErrors)
	}
	seqs := make([]int64, peers)
	msg := &neko.Message{From: 1, Type: neko.MsgHeartbeat}
	clk := n.Clock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := i % peers
		seqs[p]++
		msg.To = base + neko.ProcessID(p)
		msg.Seq = seqs[p]
		msg.SentAt = clk.Now()
		sender.Send(msg)
		// The lag probe reads several atomics; polling it every 64th op keeps
		// the bound (worst-case drift 64 sends against 7168 spare ring slots)
		// without paying the reads on the hot path.
		if batched && i&63 == 0 && i-flushed() > benchEgressLag {
			for i-flushed() > benchEgressLag/2 {
				runtime.Gosched()
			}
		}
	}
	if batched {
		for flushed() < b.N {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	if errs := n.SendErrors(); errs != 0 {
		b.Fatalf("%d send errors", errs)
	}
	st := n.EgressStats()
	if st.RingDrops != 0 {
		b.Fatalf("%d ring drops: lag bound failed to keep the pipeline lossless", st.RingDrops)
	}
	if batched {
		if st.Flushes > 0 {
			b.ReportMetric(float64(st.Packets)/float64(st.Flushes), "batch")
		}
		b.ReportMetric(float64(st.SyscallsSaved)/float64(b.N), "saved/op")
	}
}

// BenchmarkEgress1k compares the batched egress pipeline against the
// classic per-datagram path at 1024 destinations.
func BenchmarkEgress1k(b *testing.B) {
	b.Run("batched", func(b *testing.B) { runEgressBench(b, benchClusterPeers, true) })
	b.Run("classic", func(b *testing.B) { runEgressBench(b, benchClusterPeers, false) })
}

// BenchmarkEgress10k is the acceptance configuration: at 10240
// destinations the batched path must deliver ≥25% better ns/op with 0
// allocs/op on the flush path versus the classic baseline (recorded in
// BENCH_egress.json).
func BenchmarkEgress10k(b *testing.B) {
	b.Run("batched", func(b *testing.B) { runEgressBench(b, benchCluster10kPeers, true) })
	b.Run("classic", func(b *testing.B) { runEgressBench(b, benchCluster10kPeers, false) })
}

// BenchmarkEgress100k pushes the batched egress to 102400 destinations;
// completing without a drop demonstrates bounded lag at 100k peers.
func BenchmarkEgress100k(b *testing.B) {
	b.Run("batched", func(b *testing.B) { runEgressBench(b, benchCluster100kPeers, true) })
}

// runPipelineBench is the combined both-directions scale runner: one
// endpoint serving `peers` peers in both directions at once. Each op
// sends one heartbeat through the batched egress AND injects one received
// heartbeat through the batched ingest, so the flusher, the drain
// consumers and the producer all contend for the same cores. The run
// fails on any malformed packet, ring drop or send error — completion
// means both pipelines sustained the peer count with bounded lag and
// zero unexplained loss.
func runPipelineBench(b *testing.B, peers int, opts ...Option) {
	mm, err := NewMultiMonitor("127.0.0.1:0", opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = mm.Close() }()
	pkts, srcs := buildIngestTraffic(b, mm, peers)
	inj := mm.net.NewInjector()
	// Egress destinations reuse the registered peer addresses; ids are the
	// transport ids the monitor assigned (multiMonitorID+1 onward). The
	// router's inherited Send hands messages to the same endpoint the
	// ingest half receives on.
	base := multiMonitorID + 1
	seqs := make([]int64, peers)
	msg := &neko.Message{From: multiMonitorID, Type: neko.MsgHeartbeat}
	clk := mm.net.Clock()
	wallBase := time.Now().UnixNano()
	ingested := func() int {
		_, rcv, mal := mm.net.Stats()
		return int(rcv+mal) + int(mm.net.IngestStats().RingDrops)
	}
	egressed := func() int {
		st := mm.net.EgressStats()
		return int(st.Packets + st.RingDrops + st.SendErrors)
	}
	chunkPkts := make([][]byte, 0, benchIngestChunk)
	chunkSrcs := make([]netip.AddrPort, 0, benchIngestChunk)
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for i := 0; i < b.N; {
		chunkPkts, chunkSrcs = chunkPkts[:0], chunkSrcs[:0]
		for len(chunkPkts) < benchIngestChunk && i < b.N {
			p := i % peers
			// Outbound half: one heartbeat through the egress pipeline.
			seqs[p]++
			msg.To = base + neko.ProcessID(p)
			msg.Seq = seqs[p]
			msg.SentAt = clk.Now()
			mm.router.Send(msg)
			// Inbound half: one received heartbeat through the ingest
			// pipeline (patched seq + sender timestamp).
			binary.BigEndian.PutUint64(pkts[p][12:20], uint64(seqs[p]))
			binary.BigEndian.PutUint64(pkts[p][20:28], uint64(wallBase+int64(i)*1000))
			chunkPkts = append(chunkPkts, pkts[p])
			chunkSrcs = append(chunkSrcs, srcs[p])
			i++
		}
		inj.InjectBatch(chunkPkts, chunkSrcs)
		sent += len(chunkPkts)
		for sent-ingested() > benchIngestLag || sent-egressed() > benchEgressLag {
			runtime.Gosched()
		}
	}
	for ingested() < sent || egressed() < sent {
		runtime.Gosched()
	}
	b.StopTimer()
	if _, _, mal := mm.net.Stats(); mal != 0 {
		b.Fatalf("%d malformed packets", mal)
	}
	if st := mm.net.IngestStats(); st.RingDrops != 0 {
		b.Fatalf("%d ingest ring drops", st.RingDrops)
	}
	st := mm.net.EgressStats()
	if st.RingDrops != 0 || st.SendErrors != 0 {
		b.Fatalf("egress drops=%d errors=%d", st.RingDrops, st.SendErrors)
	}
	if st.Flushes > 0 {
		b.ReportMetric(float64(st.Packets)/float64(st.Flushes), "batch")
	}
}

// BenchmarkPipeline100k is the combined scale test at 102400 peers on
// the default scale profile.
func BenchmarkPipeline100k(b *testing.B) {
	runPipelineBench(b, benchCluster100kPeers)
}

// BenchmarkPipeline1M is the memory-layout acceptance test: 1,048,576
// peers held in the arena-backed shards, driven in both directions at
// once on the 1M scale profile (64-way peer/ingest tables, 32-way
// egress, 1024-slot wheels). The lag bounds plus the drop/error fatals
// make completion itself the lossless proof; steady state must stay at
// 0 allocs/op — the arena, the open-addressed tables, the rings and the
// message pools between them recycle everything.
func BenchmarkPipeline1M(b *testing.B) {
	runPipelineBench(b, benchCluster1MPeers,
		WithPipeline(PipelineConfig{ExpectedPeers: benchCluster1MPeers}))
}

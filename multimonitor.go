package wanfd

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wanfd/internal/arena"
	"wanfd/internal/core"
	"wanfd/internal/layers"
	"wanfd/internal/neko"
	"wanfd/internal/sched"
	"wanfd/internal/sim"
	"wanfd/internal/store"
	"wanfd/internal/telemetry"
	"wanfd/internal/transport"
)

// MultiMonitorConfig assembles a monitor that watches several heartbeating
// peers over one UDP socket, with one failure detector per peer. Peers are
// identified by their source address, so every remote just runs a plain
// fdheartbeat/RunHeartbeater pointed at this monitor.
//
// New code should prefer NewMultiMonitor with functional options, which
// additionally starts with an empty (or seeded) peer set and grows and
// shrinks it at runtime through AddPeer/RemovePeer.
type MultiMonitorConfig struct {
	// Listen is the local UDP address.
	Listen string
	// Peers maps a peer name (free-form, used in callbacks and queries)
	// to its heartbeater UDP address.
	Peers map[string]string
	// Eta is the heartbeat period all peers use.
	Eta time.Duration
	// Predictor and Margin select the detector combination used for every
	// peer (defaults LAST + JAC_med).
	Predictor, Margin string
	// OnChange, when non-nil, is invoked on any peer's suspicion
	// transition; it must not block.
	OnChange func(peer string, suspected bool, elapsed time.Duration)
	// MinTimeout floors the adaptive timeout; see WithMinTimeout for the
	// sentinel convention.
	MinTimeout time.Duration
}

// PeerStatus is one peer's current detector state. The lifetime counters
// are the embedded DetectorStats fields.
type PeerStatus struct {
	// Peer is the configured peer name.
	Peer string
	// Suspected is the detector's current output.
	Suspected bool
	// Timeout is the current adaptive timeout.
	Timeout time.Duration
	// DetectorStats carries the Heartbeats, Stale and Suspicions counters.
	DetectorStats
}

// ClusterSnapshot is an aggregate view of a MultiMonitor: membership size,
// how many peers are currently trusted or suspected, the summed detector
// counters, and the per-peer breakdown. It marshals directly to JSON for
// the fdmonitor HTTP endpoint.
type ClusterSnapshot struct {
	// Uptime is the time since the monitor started.
	Uptime time.Duration
	// Peers is the current membership size.
	Peers int
	// Trusted and Suspected count the peers by detector output.
	Trusted, Suspected int
	// Totals sums every peer's detector counters.
	Totals DetectorStats
	// PeerStatuses is the per-peer breakdown, sorted by name. Snapshot
	// leaves it empty (the aggregate fields above cost no per-peer
	// allocation, so /stats stays cheap at 1M peers); SnapshotDetail
	// fills it in.
	PeerStatuses []PeerStatus `json:",omitempty"`
}

// peerNameHash hashes a peer name with an inline 64-bit FNV-1a
// (allocation-free on the query path, unlike hash/fnv over a copied
// name). The low bits pick the shard; the full hash keys the shard's
// open-addressed table, where names that collide on the hash coexist and
// are disambiguated by string comparison.
func peerNameHash(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// peerEntry is one live member: its transport identity and its detector
// stack.
type peerEntry struct {
	name string
	addr string
	id   neko.ProcessID
	det  *core.Detector
	mon  *layers.Monitor
}

// peerShard is one lane of the peer table: entries live in an
// index-addressed arena and the name-keyed open-addressed table maps
// hashes to arena indices (see internal/arena). A *peerEntry from ents is
// only valid while mu is held — RemovePeer frees and zeroes the record
// under the write lock — so read paths copy the entry out before
// unlocking.
type peerShard struct {
	mu   sync.RWMutex
	tab  *arena.Map64
	ents *arena.Arena[peerEntry]
}

// find resolves a name to its arena index. Callers hold mu.
func (s *peerShard) find(h uint64, name string) (arena.Index, bool) {
	return s.tab.Find(h, func(i arena.Index) bool { return s.ents.Get(i).name == name })
}

// MultiMonitor is a running multi-peer UDP failure detector with dynamic
// membership: AddPeer and RemovePeer change the monitored set at runtime
// without dropping the socket or perturbing other peers' timers. All
// methods are safe for concurrent use.
type MultiMonitor struct {
	net    *transport.UDPNetwork
	router *layers.Router
	ctx    *neko.Context
	opts   options
	nextID atomic.Int64 // next peer ProcessID; monotonic, never reused
	// profile is the scale-derived geometry (shard counts, wheel widths)
	// everything below is sized from; see profileFor.
	profile   scaleProfile
	shards    []peerShard
	shardMask uint64
	// wheels are the per-shard timing wheels all peer deadlines run on:
	// shard i's detectors schedule on wheels[i], so the whole cluster
	// expires timers on at most len(shards) lazy driver goroutines. The
	// slice is empty when the monitor was built with WithTimerWheel(false).
	wheels []*sched.Wheel

	// Cluster-level telemetry; every field is nil (a no-op) when the
	// monitor was built without WithTelemetry.
	mPeers       *telemetry.Gauge
	mPeerAdds    *telemetry.Counter
	mPeerRemoves *telemetry.Counter
}

// multiMonitorID is the local process id of the multi-monitor; peers get
// ids above it.
const multiMonitorID neko.ProcessID = 1000

type namedListener struct {
	name     string
	onChange func(peer string, suspected bool, elapsed time.Duration)
	reg      *telemetry.Registry
	rec      *store.PeerRecorder
}

func (l namedListener) OnSuspect(_ string, at time.Duration) {
	l.reg.RecordTransition(l.name, true, at)
	l.rec.Transition(true, at)
	if l.onChange != nil {
		l.onChange(l.name, true, at)
	}
}

func (l namedListener) OnTrust(_ string, at time.Duration) {
	l.reg.RecordTransition(l.name, false, at)
	l.rec.Transition(false, at)
	if l.onChange != nil {
		l.onChange(l.name, false, at)
	}
}

// NewMultiMonitor opens the socket and starts a cluster monitor over any
// peers seeded with WithPeer; more join and leave at runtime through
// AddPeer/RemovePeer. Close must be called to release the socket.
func NewMultiMonitor(listen string, opts ...Option) (*MultiMonitor, error) {
	return newMultiMonitor(listen, resolveOptions(opts))
}

func newMultiMonitor(listen string, o options) (*MultiMonitor, error) {
	if err := o.rejectMonitorOnly("NewMultiMonitor"); err != nil {
		return nil, err
	}
	// Validate the detector recipe once up front, so a bad predictor or
	// margin name fails at construction even with an empty initial set.
	if _, err := core.NewPredictorByName(o.predictor); err != nil {
		return nil, err
	}
	if _, err := core.NewMarginByName(o.margin); err != nil {
		return nil, err
	}
	prof := profileFor(o.expectedPeers)
	net, err := transport.NewUDPNetwork(transport.UDPConfig{
		LocalID:             multiMonitorID,
		Listen:              listen,
		Telemetry:           o.telemetry,
		Unbatched:           o.batchedOff,
		Readers:             o.readers,
		UnbatchedEgress:     o.egressOff,
		EgressBatch:         o.egressBatch,
		EgressFlushInterval: o.egressFlushInterval,
		IngestShards:        prof.ingestShards,
		EgressShards:        prof.egressShards,
		ExpectedPeers:       o.expectedPeers,
	})
	if err != nil {
		return nil, err
	}
	mm := &MultiMonitor{
		net:       net,
		router:    layers.NewRouterSharded(prof.routerShards),
		opts:      o,
		profile:   prof,
		shards:    make([]peerShard, prof.peerShards),
		shardMask: uint64(prof.peerShards - 1),
	}
	mm.router.Instrument(o.telemetry)
	o.qstore.Instrument(o.telemetry)
	if reg := o.telemetry; reg != nil {
		mm.mPeers = reg.Gauge(telemetry.MetricPeers, "Current cluster membership size.")
		mm.mPeerAdds = reg.Counter(telemetry.MetricPeerAdds, "Peers added to the cluster monitor.")
		mm.mPeerRemoves = reg.Counter(telemetry.MetricPeerRemoves, "Peers removed from the cluster monitor.")
	}
	mm.nextID.Store(int64(multiMonitorID) + 1)
	// Pre-size each shard's table for its cut of the expected population.
	perShard := o.expectedPeers / prof.peerShards
	for i := range mm.shards {
		mm.shards[i].tab = arena.NewMap64(perShard)
		mm.shards[i].ents = arena.New[peerEntry]()
	}
	mm.ctx = &neko.Context{ID: multiMonitorID, Clock: net.Clock()}
	if !o.timerWheelOff {
		var onBatch func(int, time.Duration)
		if reg := o.telemetry; reg != nil {
			lag := reg.Histogram(telemetry.MetricSchedBatchLag,
				"Lag between the earliest deadline in an expiry batch and its collection.", nil)
			// Histogram.Observe is lock-free, so concurrent shard drivers
			// may share one series.
			onBatch = func(_ int, l time.Duration) { lag.Observe(l.Seconds()) }
		}
		var cpus []int
		if o.pinDrivers {
			cpus = sched.OnlineCPUs()
		}
		mm.wheels = make([]*sched.Wheel, prof.peerShards)
		for i := range mm.wheels {
			cfg := sched.Config{
				Clock:       net.Clock(),
				OnBatch:     onBatch,
				FineSlots:   prof.fineSlots,
				CoarseSlots: prof.coarseSlots,
			}
			if len(cpus) > 0 {
				// Stripe shard drivers round-robin over the online CPUs so
				// the widest profiles (64 wheels) spread across the socket
				// and each driver stays put between wakeups.
				cfg.PinCPU = cpus[i%len(cpus)] + 1
			}
			mm.wheels[i] = sched.NewWheel(cfg)
		}
		if reg := o.telemetry; reg != nil {
			reg.GaugeFunc(telemetry.MetricSchedTimers,
				"Deadlines currently queued across the shard timing wheels.",
				func() float64 { return float64(mm.SchedulerStats().Timers) })
			reg.CounterFunc(telemetry.MetricSchedFired,
				"Timing-wheel timers expired.",
				func() float64 { return float64(mm.SchedulerStats().Fired) })
			reg.CounterFunc(telemetry.MetricSchedCascades,
				"Timers migrated between timing-wheel levels.",
				func() float64 { return float64(mm.SchedulerStats().Cascades) })
			reg.GaugeFunc(telemetry.MetricSchedMaxSlot,
				"High-water mark of deadlines sharing one wheel slot on any shard.",
				func() float64 { return float64(mm.SchedulerStats().MaxSlotOccupancy) })
			reg.CounterFunc(telemetry.MetricSchedSlotsSkipped,
				"Empty wheel slots crossed by bitmap skip-scan instead of probing.",
				func() float64 { return float64(mm.SchedulerStats().SlotsSkipped) })
			reg.CounterFunc(telemetry.MetricSchedWakeups,
				"Shard driver advances (coalesced to occupied ticks).",
				func() float64 { return float64(mm.SchedulerStats().Wakeups) })
			reg.GaugeFunc(telemetry.MetricSchedFineOccupied,
				"Fine-level wheel slots currently holding deadlines, summed over shards.",
				func() float64 { return float64(mm.SchedulerStats().FineSlotsOccupied) })
			reg.GaugeFunc(telemetry.MetricSchedCoarseOccupied,
				"Coarse-level wheel slots currently holding deadlines, summed over shards.",
				func() float64 { return float64(mm.SchedulerStats().CoarseSlotsOccupied) })
			reg.GaugeFunc(telemetry.MetricSchedOverflow,
				"Deadlines parked beyond the wheel horizon, summed over shards.",
				func() float64 { return float64(mm.SchedulerStats().OverflowTimers) })
		}
	}
	proc, err := neko.NewProcess(multiMonitorID, net.Clock(), net, mm.router)
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	if err := proc.Start(); err != nil {
		_ = net.Close()
		return nil, err
	}
	for _, p := range o.peers {
		if err := mm.AddPeer(p.name, p.addr); err != nil {
			_ = mm.Close()
			return nil, err
		}
	}
	return mm, nil
}

// ListenAndMonitorMany opens the socket and starts one detector per
// configured peer. Close must be called to release the socket.
//
// It is a thin wrapper over NewMultiMonitor kept for compatibility; unlike
// NewMultiMonitor it insists on a non-empty initial peer set.
func ListenAndMonitorMany(cfg MultiMonitorConfig) (*MultiMonitor, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("wanfd: multi-monitor needs at least one peer")
	}
	o := options{
		eta:        cfg.Eta,
		predictor:  cfg.Predictor,
		margin:     cfg.Margin,
		minTimeout: cfg.MinTimeout,
		onChange:   cfg.OnChange,
	}
	o.normalize()
	// Seed in sorted order so process ids are deterministic for a given
	// configuration, as they were when the peer set was frozen.
	names := make([]string, 0, len(cfg.Peers))
	for name := range cfg.Peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o.peers = append(o.peers, peerSpec{name: name, addr: cfg.Peers[name]})
	}
	return newMultiMonitor(cfg.Listen, o)
}

// AddPeer starts monitoring one more peer, identified by the source
// address its heartbeats will arrive from. The peer gets a fresh detector
// and a fresh process id — re-adding a previously removed name never
// resurrects old suspicion state. Names and addresses must be unique
// within the cluster.
func (m *MultiMonitor) AddPeer(name, addr string) error {
	if name == "" {
		return fmt.Errorf("wanfd: empty peer name")
	}
	// Build the whole detector stack before touching the shard, so the
	// critical section other peers' queries (and a same-shard removal)
	// contend with is only the publication below, not the construction.
	pred, err := core.NewPredictorByName(m.opts.predictor)
	if err != nil {
		return err
	}
	margin, err := core.NewMarginByName(m.opts.margin)
	if err != nil {
		return err
	}
	// One durable-store recorder per peer: the detector taps it for every
	// heartbeat sample, the listener for every transition. Nil (a no-op)
	// when the monitor was built without WithStore.
	rec := m.opts.qstore.Recorder(name)
	det, err := core.NewDetector(core.DetectorConfig{
		Name:       name,
		Predictor:  pred,
		Margin:     margin,
		Eta:        m.opts.eta,
		Clock:      m.clockFor(name),
		Listener:   namedListener{name: name, onChange: m.opts.onChange, reg: m.opts.telemetry, rec: rec},
		MinTimeout: m.opts.minTimeout,
		Metrics:    m.opts.telemetry.DetectorMetrics(name),
		Sample:     rec,
	})
	if err != nil {
		return err
	}
	mon, err := layers.NewMonitor(det)
	if err != nil {
		return err
	}
	if err := mon.Init(m.ctx); err != nil {
		return err
	}
	h := peerNameHash(name)
	s := &m.shards[h&m.shardMask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.find(h, name); dup {
		mon.Stop()
		return fmt.Errorf("wanfd: peer %q already monitored", name)
	}
	id := neko.ProcessID(m.nextID.Add(1) - 1)
	// Route before registering the address: the instant the transport can
	// attribute packets to this id, the detector is already reachable.
	if err := m.router.Route(id, mon); err != nil {
		mon.Stop()
		return err
	}
	if err := m.net.AddPeer(id, addr); err != nil {
		_ = m.router.Unroute(id)
		mon.Stop()
		return err
	}
	idx, e := s.ents.Alloc()
	*e = peerEntry{name: name, addr: addr, id: id, det: det, mon: mon}
	s.tab.Put(h, idx)
	// State the detector tracks anyway is sampled at scrape time, not
	// pushed per heartbeat; RemovePeer's DropSeries retires the callbacks.
	m.opts.telemetry.DetectorFuncs(name,
		func() (uint64, uint64, uint64) {
			st := det.DetectorStats()
			return st.Heartbeats, st.Stale, st.Suspicions
		},
		func() float64 { return det.CurrentTimeout() / 1e3 },
		det.Suspected,
	)
	m.mPeerAdds.Inc()
	// Maintained incrementally: Peers() would re-lock the shard held here.
	m.mPeers.Add(1)
	return nil
}

// RemovePeer stops monitoring a peer and tears its detector down. Other
// peers' detectors and timers are untouched; packets still in flight from
// the removed peer are ignored.
func (m *MultiMonitor) RemovePeer(name string) error {
	h := peerNameHash(name)
	s := &m.shards[h&m.shardMask]
	s.mu.Lock()
	var e peerEntry
	idx, ok := s.tab.Remove(h, func(i arena.Index) bool { return s.ents.Get(i).name == name })
	if ok {
		// Copy the entry out before freeing: Free zeroes the record, and
		// the teardown below runs outside the shard lock.
		e = *s.ents.Get(idx)
		s.ents.Free(idx)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("wanfd: unknown peer %q", name)
	}
	// Unregister the address first so new packets stop being attributed,
	// then unroute and stop: a packet already past the transport lookup
	// still finds a live (about-to-stop) detector, and a straggler
	// arriving after Stop is discarded by the detector itself.
	_ = m.net.RemovePeer(e.id)
	_ = m.router.Unroute(e.id)
	e.mon.Stop()
	m.mPeerRemoves.Inc()
	m.mPeers.Add(-1)
	// Retire the peer's series and running QoS state so churn does not
	// grow the exposition without bound; re-added names start fresh,
	// matching the fresh-detector semantics.
	if reg := m.opts.telemetry; reg != nil {
		reg.DropSeries("peer", name)
		reg.QoS().RemovePeer(name)
	}
	return nil
}

// clockFor returns the timer source for a peer's detector: its shard's
// timing wheel, or the endpoint clock when the wheel is disabled. Timers
// land on the same shard as the peer's table entry, so membership churn
// and timer load distribute identically.
func (m *MultiMonitor) clockFor(name string) sim.Clock {
	if len(m.wheels) > 0 {
		return m.wheels[peerNameHash(name)&m.shardMask]
	}
	return m.ctx.Clock
}

// SchedulerStats is an aggregate snapshot of a cluster monitor's shard
// timing wheels.
type SchedulerStats struct {
	// Wheels is the number of shard wheels (0 with WithTimerWheel(false)).
	Wheels int
	// Timers is the number of deadlines currently queued.
	Timers int
	// Fired, Batches and Cascades are lifetime totals: timers expired,
	// non-empty expiry batches, and timers migrated between wheel levels.
	Fired, Batches, Cascades uint64
	// MaxSlotOccupancy is the highest number of deadlines that ever shared
	// one wheel slot on any shard.
	MaxSlotOccupancy int
	// FineSlotsOccupied and CoarseSlotsOccupied sum, over the shards, the
	// wheel slots whose lists are currently non-empty; OverflowTimers sums
	// the deadlines parked beyond the wheel horizon.
	FineSlotsOccupied   int
	CoarseSlotsOccupied int
	OverflowTimers      int
	// SlotsSkipped counts empty slots the bitmap skip-scan crossed without
	// probing; Wakeups counts driver advances after coalescing to occupied
	// ticks.
	SlotsSkipped uint64
	Wakeups      uint64
}

// WheelStats is one shard wheel's counter snapshot, as returned by
// SchedulerStatsDetail.
type WheelStats = sched.Stats

// SchedulerStats aggregates the shard wheels' counters. All fields are
// zero when the timing wheel is disabled.
func (m *MultiMonitor) SchedulerStats() SchedulerStats {
	var out SchedulerStats
	for _, w := range m.wheels {
		s := w.Stats()
		out.Wheels++
		out.Timers += s.Scheduled
		out.Fired += s.Fired
		out.Batches += s.Batches
		out.Cascades += s.Cascades
		if s.MaxSlotOccupancy > out.MaxSlotOccupancy {
			out.MaxSlotOccupancy = s.MaxSlotOccupancy
		}
		out.FineSlotsOccupied += s.FineSlotsOccupied
		out.CoarseSlotsOccupied += s.CoarseSlotsOccupied
		out.OverflowTimers += s.OverflowTimers
		out.SlotsSkipped += s.SlotsSkipped
		out.Wakeups += s.Wakeups
	}
	return out
}

// SchedulerStatsDetail returns each shard wheel's own snapshot, indexed by
// shard, for occupancy and skip-scan analysis at the per-wheel grain the
// aggregate hides. Like the table SnapshotDetail convention from the peer
// state layer, the per-shard breakdown is opt-in: SchedulerStats stays the
// cheap aggregate view. Nil when the timing wheel is disabled.
func (m *MultiMonitor) SchedulerStatsDetail() []WheelStats {
	if len(m.wheels) == 0 {
		return nil
	}
	out := make([]WheelStats, len(m.wheels))
	for i, w := range m.wheels {
		out[i] = w.Stats()
	}
	return out
}

// lookup finds a live peer entry, returned by value: the arena record is
// only stable under the shard lock (a concurrent RemovePeer frees and
// zeroes it), but the copied pointers — detector, monitor — stay valid
// heap objects, exactly as they did when the table held *peerEntry.
func (m *MultiMonitor) lookup(name string) (peerEntry, bool) {
	h := peerNameHash(name)
	s := &m.shards[h&m.shardMask]
	s.mu.RLock()
	defer s.mu.RUnlock()
	if idx, ok := s.find(h, name); ok {
		return *s.ents.Get(idx), true
	}
	return peerEntry{}, false
}

// Suspected reports whether the named peer is currently suspected; unknown
// peers report an error.
func (m *MultiMonitor) Suspected(peer string) (bool, error) {
	e, ok := m.lookup(peer)
	if !ok {
		return false, fmt.Errorf("wanfd: unknown peer %q", peer)
	}
	return e.det.Suspected(), nil
}

// PeerStatusOf returns one peer's full status; unknown peers report an
// error.
func (m *MultiMonitor) PeerStatusOf(peer string) (PeerStatus, error) {
	e, ok := m.lookup(peer)
	if !ok {
		return PeerStatus{}, fmt.Errorf("wanfd: unknown peer %q", peer)
	}
	return e.status(), nil
}

// status builds the PeerStatus of one live entry.
func (e *peerEntry) status() PeerStatus {
	return PeerStatus{
		Peer:          e.name,
		Suspected:     e.det.Suspected(),
		Timeout:       time.Duration(e.det.CurrentTimeout() * float64(time.Millisecond)),
		DetectorStats: e.det.DetectorStats(),
	}
}

// entries snapshots the live peer entries, by value, shard by shard.
func (m *MultiMonitor) entries() []peerEntry {
	out := make([]peerEntry, 0, m.Peers())
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		s.ents.Range(func(_ arena.Index, e *peerEntry) bool {
			out = append(out, *e)
			return true
		})
		s.mu.RUnlock()
	}
	return out
}

// Status returns every peer's state, sorted by peer name. Membership may
// change concurrently; the result is a consistent per-peer (not
// cross-peer) snapshot. Statuses are built shard by shard in one pass —
// the detector's own lock nests safely under a shard read lock.
func (m *MultiMonitor) Status() []PeerStatus {
	out := make([]PeerStatus, 0, m.Peers())
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		s.ents.Range(func(_ arena.Index, e *peerEntry) bool {
			out = append(out, e.status())
			return true
		})
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Peers returns the current membership size.
func (m *MultiMonitor) Peers() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += s.ents.Len()
		s.mu.RUnlock()
	}
	return n
}

// Snapshot aggregates the whole cluster: counts by output, summed
// counters, and uptime. It reads every detector but materializes no
// per-peer state — constant allocation regardless of membership size, so
// a stats endpoint polling it stays cheap at 1M peers. SnapshotDetail
// adds the per-peer breakdown.
func (m *MultiMonitor) Snapshot() ClusterSnapshot {
	snap := ClusterSnapshot{Uptime: m.ctx.Clock.Now()}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		s.ents.Range(func(_ arena.Index, e *peerEntry) bool {
			snap.Peers++
			if e.det.Suspected() {
				snap.Suspected++
			} else {
				snap.Trusted++
			}
			st := e.det.DetectorStats()
			snap.Totals.Heartbeats += st.Heartbeats
			snap.Totals.Stale += st.Stale
			snap.Totals.Suspicions += st.Suspicions
			return true
		})
		s.mu.RUnlock()
	}
	return snap
}

// SnapshotDetail is Snapshot plus the per-peer breakdown, sorted by name.
// It allocates O(peers); prefer Snapshot for periodic polling at scale.
func (m *MultiMonitor) SnapshotDetail() ClusterSnapshot {
	st := m.Status()
	snap := ClusterSnapshot{
		Uptime:       m.ctx.Clock.Now(),
		Peers:        len(st),
		PeerStatuses: st,
	}
	for _, s := range st {
		if s.Suspected {
			snap.Suspected++
		} else {
			snap.Trusted++
		}
		snap.Totals.Heartbeats += s.Heartbeats
		snap.Totals.Stale += s.Stale
		snap.Totals.Suspicions += s.Suspicions
	}
	return snap
}

// LocalAddr returns the bound UDP address string.
func (m *MultiMonitor) LocalAddr() string { return m.net.LocalAddr().String() }

// Telemetry returns the registry the monitor was built with (nil without
// WithTelemetry).
func (m *MultiMonitor) Telemetry() *telemetry.Registry { return m.opts.telemetry }

// Close stops every detector, shuts the shard timing wheels down, and
// releases the socket.
func (m *MultiMonitor) Close() error {
	for _, e := range m.entries() {
		e.mon.Stop()
	}
	for _, w := range m.wheels {
		if w != nil {
			w.Close()
		}
	}
	return m.net.Close()
}

package wanfd

import (
	"fmt"
	"sort"
	"time"

	"wanfd/internal/core"
	"wanfd/internal/layers"
	"wanfd/internal/neko"
	"wanfd/internal/transport"
)

// MultiMonitorConfig assembles a monitor that watches several heartbeating
// peers over one UDP socket, with one failure detector per peer. Peers are
// identified by their source address, so every remote just runs a plain
// fdheartbeat/RunHeartbeater pointed at this monitor.
type MultiMonitorConfig struct {
	// Listen is the local UDP address.
	Listen string
	// Peers maps a peer name (free-form, used in callbacks and queries)
	// to its heartbeater UDP address.
	Peers map[string]string
	// Eta is the heartbeat period all peers use.
	Eta time.Duration
	// Predictor and Margin select the detector combination used for every
	// peer (defaults LAST + JAC_med).
	Predictor, Margin string
	// OnChange, when non-nil, is invoked on any peer's suspicion
	// transition; it must not block.
	OnChange func(peer string, suspected bool, elapsed time.Duration)
	// MinTimeout floors the adaptive timeout (0 means 10 ms; negative
	// disables the floor).
	MinTimeout time.Duration
}

// PeerStatus is one peer's current detector state.
type PeerStatus struct {
	// Peer is the configured peer name.
	Peer string
	// Suspected is the detector's current output.
	Suspected bool
	// Timeout is the current adaptive timeout.
	Timeout time.Duration
	// Heartbeats, Stale and Suspicions are the detector counters.
	Heartbeats, Stale, Suspicions uint64
}

// MultiMonitor is a running multi-peer UDP failure detector.
type MultiMonitor struct {
	net       *transport.UDPNetwork
	detectors map[string]*core.Detector
	monitors  []*layers.Monitor
	names     []string
}

// multiMonitorID is the local process id of the multi-monitor; peers get
// ids above it.
const multiMonitorID neko.ProcessID = 1000

type namedListener struct {
	name     string
	onChange func(peer string, suspected bool, elapsed time.Duration)
}

func (l namedListener) OnSuspect(_ string, at time.Duration) {
	if l.onChange != nil {
		l.onChange(l.name, true, at)
	}
}

func (l namedListener) OnTrust(_ string, at time.Duration) {
	if l.onChange != nil {
		l.onChange(l.name, false, at)
	}
}

// ListenAndMonitorMany opens the socket and starts one detector per peer.
// Close must be called to release the socket.
func ListenAndMonitorMany(cfg MultiMonitorConfig) (*MultiMonitor, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("wanfd: multi-monitor needs at least one peer")
	}
	if cfg.Predictor == "" {
		cfg.Predictor = "LAST"
	}
	if cfg.Margin == "" {
		cfg.Margin = "JAC_med"
	}
	names := make([]string, 0, len(cfg.Peers))
	for name := range cfg.Peers {
		names = append(names, name)
	}
	sort.Strings(names)

	peerIDs := make(map[neko.ProcessID]string, len(names))
	peerAddrs := make(map[neko.ProcessID]string, len(names))
	for i, name := range names {
		id := multiMonitorID + 1 + neko.ProcessID(i)
		peerIDs[id] = name
		peerAddrs[id] = cfg.Peers[name]
	}

	net, err := transport.NewUDPNetwork(transport.UDPConfig{
		LocalID: multiMonitorID,
		Listen:  cfg.Listen,
		Peers:   peerAddrs,
	})
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			_ = net.Close()
		}
	}()

	router := layers.NewRouter()
	mm := &MultiMonitor{
		net:       net,
		detectors: make(map[string]*core.Detector, len(names)),
		names:     names,
	}
	ctx := &neko.Context{ID: multiMonitorID, Clock: net.Clock()}
	for id, name := range peerIDs {
		pred, err := core.NewPredictorByName(cfg.Predictor)
		if err != nil {
			return nil, err
		}
		margin, err := core.NewMarginByName(cfg.Margin)
		if err != nil {
			return nil, err
		}
		minTimeout := cfg.MinTimeout
		if minTimeout == 0 {
			minTimeout = 10 * time.Millisecond
		}
		if minTimeout < 0 {
			minTimeout = 0
		}
		det, err := core.NewDetector(core.DetectorConfig{
			Name:       name,
			Predictor:  pred,
			Margin:     margin,
			Eta:        cfg.Eta,
			Clock:      net.Clock(),
			Listener:   namedListener{name: name, onChange: cfg.OnChange},
			MinTimeout: minTimeout,
		})
		if err != nil {
			return nil, err
		}
		mon, err := layers.NewMonitor(det)
		if err != nil {
			return nil, err
		}
		if err := mon.Init(ctx); err != nil {
			return nil, err
		}
		if err := router.Route(id, mon); err != nil {
			return nil, err
		}
		mm.detectors[name] = det
		mm.monitors = append(mm.monitors, mon)
	}
	proc, err := neko.NewProcess(multiMonitorID, net.Clock(), net, router)
	if err != nil {
		return nil, err
	}
	if err := proc.Start(); err != nil {
		return nil, err
	}
	ok = true
	return mm, nil
}

// Suspected reports whether the named peer is currently suspected; unknown
// peers report an error.
func (m *MultiMonitor) Suspected(peer string) (bool, error) {
	det, ok := m.detectors[peer]
	if !ok {
		return false, fmt.Errorf("wanfd: unknown peer %q", peer)
	}
	return det.Suspected(), nil
}

// Status returns every peer's state, sorted by peer name.
func (m *MultiMonitor) Status() []PeerStatus {
	out := make([]PeerStatus, 0, len(m.names))
	for _, name := range m.names {
		det := m.detectors[name]
		hb, stale, susp := det.Stats()
		out = append(out, PeerStatus{
			Peer:       name,
			Suspected:  det.Suspected(),
			Timeout:    time.Duration(det.CurrentTimeout() * float64(time.Millisecond)),
			Heartbeats: hb,
			Stale:      stale,
			Suspicions: susp,
		})
	}
	return out
}

// LocalAddr returns the bound UDP address string.
func (m *MultiMonitor) LocalAddr() string { return m.net.LocalAddr().String() }

// Close stops every detector and releases the socket.
func (m *MultiMonitor) Close() error {
	for _, mon := range m.monitors {
		mon.Stop()
	}
	return m.net.Close()
}

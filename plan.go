package wanfd

import (
	"time"

	"wanfd/internal/core"
	"wanfd/internal/qosplan"
)

// NetworkModel is a probabilistic characterization of a channel, used to
// size constant-timeout detectors from QoS requirements (the NFD approach
// of Chen, Toueg and Aguilera that the paper's adaptive detectors
// generalize).
type NetworkModel struct {
	// LossProb is the per-message loss probability, in [0, 1).
	LossProb float64
	// MeanDelay and StdDevDelay characterize the one-way delay.
	MeanDelay, StdDevDelay time.Duration
}

// QoSRequirements are detector QoS targets.
type QoSRequirements struct {
	// MaxDetectionTime is the hard detection-time bound T_D^U (required).
	MaxDetectionTime time.Duration
	// MinMistakeRecurrence, if nonzero, lower-bounds the mean time
	// between mistakes.
	MinMistakeRecurrence time.Duration
	// MaxMistakeDuration, if nonzero, upper-bounds the mean mistake
	// duration.
	MaxMistakeDuration time.Duration
}

// DetectorPlan is a sized constant-timeout detector plus its predicted
// QoS.
type DetectorPlan struct {
	// Eta is the heartbeat period to configure on the monitored process.
	Eta time.Duration
	// Timeout is the constant timeout δ; Margin = Timeout − MeanDelay is
	// the constant safety margin.
	Timeout, Margin time.Duration

	// Predicted QoS under the network model.
	PredictedDetectionBound    time.Duration
	PredictedMeanDetection     time.Duration
	PredictedMistakeRecurrence time.Duration
	PredictedMistakeDuration   time.Duration
	PredictedQueryAccuracy     float64
}

// PlanDetector sizes a constant-timeout detector: it finds the largest
// heartbeat period (fewest messages) whose constant timeout meets all the
// requirements under the network model. Use Build to materialize it.
func PlanDetector(network NetworkModel, req QoSRequirements) (DetectorPlan, error) {
	p, err := qosplan.Compute(qosplan.Network{
		LossProb:    network.LossProb,
		MeanDelay:   network.MeanDelay,
		StdDevDelay: network.StdDevDelay,
	}, qosplan.Requirements{
		MaxDetectionTime:     req.MaxDetectionTime,
		MinMistakeRecurrence: req.MinMistakeRecurrence,
		MaxMistakeDuration:   req.MaxMistakeDuration,
	})
	if err != nil {
		return DetectorPlan{}, err
	}
	return DetectorPlan{
		Eta:                        p.Eta,
		Timeout:                    p.Timeout,
		Margin:                     p.Margin,
		PredictedDetectionBound:    p.PredictedDetectionBound,
		PredictedMeanDetection:     p.PredictedMeanDetection,
		PredictedMistakeRecurrence: p.PredictedMistakeRecurrence,
		PredictedMistakeDuration:   p.PredictedMistakeDuration,
		PredictedQueryAccuracy:     p.PredictedQueryAccuracy,
	}, nil
}

// Build materializes the plan as a running real-time detector (NFD-E: the
// MEAN predictor plus the plan's constant margin). The monitored process
// must send heartbeats every plan.Eta.
func (p DetectorPlan) Build(onSuspect, onTrust func(elapsed time.Duration)) (*Detector, error) {
	margin, err := core.NewConstantMargin("planned",
		float64(p.Margin)/float64(time.Millisecond))
	if err != nil {
		return nil, err
	}
	return NewDetector(DetectorConfig{
		CustomPredictor: core.NewMean(),
		CustomMargin:    margin,
		Eta:             p.Eta,
		OnSuspect:       onSuspect,
		OnTrust:         onTrust,
	})
}

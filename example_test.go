package wanfd_test

import (
	"fmt"
	"time"

	"wanfd"
)

// Embed a failure detector: feed it heartbeats from your own transport and
// query it at any time.
func ExampleNewDetector() {
	det, err := wanfd.NewDetector(wanfd.DetectorConfig{
		Predictor: "LAST",    // the paper's recommended combination:
		Margin:    "JAC_med", // LAST + SM_JAC
		Eta:       time.Second,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer det.Stop()

	// On every heartbeat your transport receives:
	det.Heartbeat(0, time.Now().Add(-200*time.Millisecond))

	fmt.Println(det.Name(), det.Suspected())
	// Output: LAST+JAC_med false
}

// List the paper's 30 predictor×margin combinations.
func ExampleCombinations() {
	combos := wanfd.Combinations()
	fmt.Println(len(combos), combos[0].Name())
	// Output: 30 ARIMA+CI_low
}

// Reproduce the paper's Table 4: characterize the simulated Italy–Japan
// channel.
func ExampleCharacterizeChannel() {
	c, err := wanfd.CharacterizeChannel(wanfd.ChannelItalyJapan, 50000, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("mean %dms min %dms loss<1%%: %v\n",
		c.MeanDelay.Round(10*time.Millisecond)/time.Millisecond,
		c.MinDelay.Round(10*time.Millisecond)/time.Millisecond,
		c.LossRate < 0.01)
	// Output: mean 210ms min 190ms loss<1%: true
}

// Reproduce the paper's Table 3: rank the predictors by one-step accuracy.
func ExampleReproduceAccuracy() {
	rows, err := wanfd.ReproduceAccuracy(wanfd.ChannelItalyJapan, 20000, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("most accurate:", rows[0].Predictor)
	// Output: most accurate: ARIMA
}

// Size a constant-timeout detector from QoS requirements (the Chen et al.
// approach).
func ExamplePlanDetector() {
	plan, err := wanfd.PlanDetector(wanfd.NetworkModel{
		LossProb:    0.004,
		MeanDelay:   207 * time.Millisecond,
		StdDevDelay: 9 * time.Millisecond,
	}, wanfd.QoSRequirements{
		MaxDetectionTime:     2 * time.Second,
		MinMistakeRecurrence: 10 * time.Minute,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("bound met: %v, accuracy met: %v\n",
		plan.PredictedDetectionBound <= 2*time.Second,
		plan.PredictedMistakeRecurrence >= 10*time.Minute)
	// Output: bound met: true, accuracy met: true
}

// A φ-accrual suspicion level instead of a boolean output.
func ExampleNewAccrual() {
	a, err := wanfd.NewAccrual(32, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	a.Heartbeat()
	fmt.Println(a.Suspected(8))
	// Output: false
}

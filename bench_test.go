package wanfd

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus the §5.3 complexity micro-benchmarks. The
// table/figure benchmarks execute the corresponding (reduced) experiment
// per iteration and report the headline quantity via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every reported number; the cmd/
// binaries print the full tables.

import (
	"testing"
	"time"

	"wanfd/internal/arima"
	"wanfd/internal/consensus"
	"wanfd/internal/core"
	"wanfd/internal/experiment"
	"wanfd/internal/sim"
	"wanfd/internal/wan"
)

// BenchmarkTable3PredictorAccuracy regenerates the predictor-accuracy
// ranking (Table 3). Reported metrics: msqerr of the best (ARIMA) and
// worst predictors.
func BenchmarkTable3PredictorAccuracy(b *testing.B) {
	var bestErr, worstErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAccuracy(experiment.AccuracyConfig{
			Samples: 20000,
			Seed:    int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		bestErr = res.Rows[0].MSqErr
		worstErr = res.Rows[len(res.Rows)-1].MSqErr
	}
	b.ReportMetric(bestErr, "best-msqerr")
	b.ReportMetric(worstErr, "worst-msqerr")
}

// BenchmarkTable4WANCharacterization regenerates the channel
// characterization (Table 4). Reported metrics: mean/σ/max one-way delay
// (ms) and loss (%).
func BenchmarkTable4WANCharacterization(b *testing.B) {
	var c wan.Characterization
	for i := 0; i < b.N; i++ {
		ch, err := wan.NewPresetChannel(wan.PresetItalyJapan, int64(i)+1, "bench")
		if err != nil {
			b.Fatal(err)
		}
		c, err = wan.Characterize(ch, 100000, time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	b.ReportMetric(ms(c.MeanDelay), "mean-ms")
	b.ReportMetric(ms(c.StdDevDelay), "stddev-ms")
	b.ReportMetric(ms(c.MaxDelay), "max-ms")
	b.ReportMetric(c.LossRate*100, "loss-%")
}

// benchQoS runs a reduced QoS experiment (1 run × 5000 cycles, all 30
// combinations) once per iteration and returns the final result.
func benchQoS(b *testing.B) *experiment.QoSResult {
	b.Helper()
	var res *experiment.QoSResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunQoS(experiment.QoSConfig{
			Runs:      1,
			NumCycles: 5000,
			Seed:      int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// reportComboMetric reports the metric value of representative
// combinations: the paper's recommendation (LAST+JAC_med), the most
// accurate pairing (ARIMA+CI_low) and the slowest predictor (MEAN+CI_med).
func reportComboMetric(b *testing.B, res *experiment.QoSResult, m experiment.Metric) {
	b.Helper()
	for _, combo := range []core.Combo{
		{Predictor: "LAST", Margin: "JAC_med"},
		{Predictor: "ARIMA", Margin: "CI_low"},
		{Predictor: "MEAN", Margin: "CI_med"},
	} {
		if v, ok := res.ComboValue(m, combo.Predictor, combo.Margin); ok {
			b.ReportMetric(v, combo.Name())
		}
	}
}

// BenchmarkFigure4DetectionTime regenerates the mean detection time T_D.
func BenchmarkFigure4DetectionTime(b *testing.B) {
	reportComboMetric(b, benchQoS(b), experiment.MetricTD)
}

// BenchmarkFigure5MaxDetectionTime regenerates T_D^U.
func BenchmarkFigure5MaxDetectionTime(b *testing.B) {
	reportComboMetric(b, benchQoS(b), experiment.MetricTDU)
}

// BenchmarkFigure6MistakeDuration regenerates T_M.
func BenchmarkFigure6MistakeDuration(b *testing.B) {
	reportComboMetric(b, benchQoS(b), experiment.MetricTM)
}

// BenchmarkFigure7MistakeRecurrence regenerates T_MR.
func BenchmarkFigure7MistakeRecurrence(b *testing.B) {
	reportComboMetric(b, benchQoS(b), experiment.MetricTMR)
}

// BenchmarkFigure8QueryAccuracy regenerates P_A.
func BenchmarkFigure8QueryAccuracy(b *testing.B) {
	reportComboMetric(b, benchQoS(b), experiment.MetricPA)
}

// BenchmarkARIMAGridSearch regenerates the §5.1 order-selection procedure
// on a reduced grid, reporting the best order found.
func BenchmarkARIMAGridSearch(b *testing.B) {
	ch, err := wan.NewPresetChannel(wan.PresetItalyJapan, 1, "grid")
	if err != nil {
		b.Fatal(err)
	}
	delays, err := wan.CollectDelays(ch, 6000, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	series := make([]float64, len(delays))
	for i, d := range delays {
		series[i] = float64(d) / float64(time.Millisecond)
	}
	b.ResetTimer()
	var best arima.Candidate
	for i := 0; i < b.N; i++ {
		cands, err := arima.Search(series, arima.SearchConfig{MaxP: 2, MaxD: 1, MaxQ: 1})
		if err != nil {
			b.Fatal(err)
		}
		best = cands[0]
	}
	b.ReportMetric(float64(best.P*100+best.D*10+best.Q), "best-pdq")
	b.ReportMetric(best.MSqErr, "msqerr")
}

// §5.3 complexity micro-benchmarks: every timeout computation method is
// O(1) per heartbeat. One op = observe one delay + produce one prediction
// or margin.

func benchPredictorStep(b *testing.B, name string) {
	b.Helper()
	pred, err := core.NewPredictorByName(name)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1, "bench/"+name)
	// Pre-generate inputs so the RNG is not measured.
	delays := make([]float64, 4096)
	for i := range delays {
		delays[i] = 200 + 10*rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		pred.Observe(delays[i&4095])
		sink = pred.Predict()
	}
	_ = sink
}

func BenchmarkPredictorStepLAST(b *testing.B)    { benchPredictorStep(b, "LAST") }
func BenchmarkPredictorStepMEAN(b *testing.B)    { benchPredictorStep(b, "MEAN") }
func BenchmarkPredictorStepWINMEAN(b *testing.B) { benchPredictorStep(b, "WINMEAN") }
func BenchmarkPredictorStepLPF(b *testing.B)     { benchPredictorStep(b, "LPF") }

// BenchmarkPredictorStepARIMA includes the amortized cost of the periodic
// refit (every 1000 observations, as in the paper).
func BenchmarkPredictorStepARIMA(b *testing.B) { benchPredictorStep(b, "ARIMA") }

func benchMarginStep(b *testing.B, name string) {
	b.Helper()
	m, err := core.NewMarginByName(name)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1, "bench/"+name)
	obs := make([]float64, 4096)
	for i := range obs {
		obs[i] = 200 + 10*rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		m.Observe(obs[i&4095], 200)
		sink = m.Margin()
	}
	_ = sink
}

func BenchmarkMarginStepCI(b *testing.B)  { benchMarginStep(b, "CI_med") }
func BenchmarkMarginStepJAC(b *testing.B) { benchMarginStep(b, "JAC_med") }

// BenchmarkDetectorOnHeartbeat measures the full per-heartbeat cost of the
// freshness-point engine (LAST+JAC_med, the paper's recommended detector).
func BenchmarkDetectorOnHeartbeat(b *testing.B) {
	eng := sim.NewEngine()
	pred, margin, err := (core.Combo{Predictor: "LAST", Margin: "JAC_med"}).Build()
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.NewDetector(core.DetectorConfig{
		Predictor: pred,
		Margin:    margin,
		Eta:       time.Second,
		Clock:     eng,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send := time.Duration(i) * time.Second
		det.OnHeartbeat(int64(i), send, send+200*time.Millisecond)
	}
}

// BenchmarkAblationEtaSweep measures how the detection time scales with
// the heartbeat period (a design-choice ablation: η trades bandwidth for
// detection latency linearly).
func BenchmarkAblationEtaSweep(b *testing.B) {
	for _, eta := range []time.Duration{250 * time.Millisecond, time.Second, 4 * time.Second} {
		eta := eta
		b.Run(eta.String(), func(b *testing.B) {
			var td float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunQoS(experiment.QoSConfig{
					Runs:      1,
					NumCycles: int(2500 * time.Second / eta),
					Eta:       eta,
					Seed:      int64(i) + 1,
					Combos:    []core.Combo{{Predictor: "LAST", Margin: "JAC_med"}},
				})
				if err != nil {
					b.Fatal(err)
				}
				td, _ = res.ComboValue(experiment.MetricTD, "LAST", "JAC_med")
			}
			b.ReportMetric(td, "TD-ms")
		})
	}
}

// BenchmarkAblationChannelSweep measures the recommended detector across
// the three channel presets (the paper's "other environments" future
// work).
func BenchmarkAblationChannelSweep(b *testing.B) {
	for _, preset := range []wan.Preset{wan.PresetLAN, wan.PresetItalyJapan, wan.PresetLossyMobile} {
		preset := preset
		b.Run(preset.String(), func(b *testing.B) {
			var td, pa float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunQoS(experiment.QoSConfig{
					Runs:      1,
					NumCycles: 2500,
					Preset:    preset,
					Seed:      int64(i) + 1,
					Combos:    []core.Combo{{Predictor: "LAST", Margin: "JAC_med"}},
				})
				if err != nil {
					b.Fatal(err)
				}
				td, _ = res.ComboValue(experiment.MetricTD, "LAST", "JAC_med")
				pa, _ = res.ComboValue(experiment.MetricPA, "LAST", "JAC_med")
			}
			b.ReportMetric(td, "TD-ms")
			b.ReportMetric(pa, "PA")
		})
	}
}

// BenchmarkPushVsPull regenerates the §2.2 interaction-style comparison:
// reported metrics are the two styles' message counts and detection times
// (same quality, half the messages for push).
func BenchmarkPushVsPull(b *testing.B) {
	var res *experiment.PushPullComparison
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunPushPull(experiment.PushPullConfig{
			NumCycles: 4000,
			Seed:      int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Push.MessagesSent), "push-msgs")
	b.ReportMetric(float64(res.Pull.MessagesSent), "pull-msgs")
	b.ReportMetric(res.Push.QoS.TD.Mean, "push-TD-ms")
	b.ReportMetric(res.Pull.QoS.TD.Mean, "pull-TD-ms")
}

// BenchmarkConsensusCrashLatency measures the application-level consequence
// of detector QoS (the paper's reference [6]): mean consensus latency when
// the coordinator crashes mid-protocol, for a fast and a conservative
// detector.
func BenchmarkConsensusCrashLatency(b *testing.B) {
	for _, combo := range []core.Combo{
		{Predictor: "LAST", Margin: "JAC_low"},
		{Predictor: "MEAN", Margin: "CI_high"},
	} {
		combo := combo
		b.Run(combo.Name(), func(b *testing.B) {
			var latency time.Duration
			for i := 0; i < b.N; i++ {
				res, err := consensus.RunExperiment(consensus.ExperimentConfig{
					N:                  3,
					Combo:              combo,
					Eta:                time.Second,
					PollInterval:       5 * time.Millisecond,
					Seed:               int64(i) + 1,
					CoordinatorCrashAt: 100 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Decided || !res.Agreement {
					b.Fatalf("consensus failed: %+v", res)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency)/float64(time.Millisecond), "latency-ms")
		})
	}
}

// BenchmarkAccrualVsPaper races the modern φ-accrual detector (thresholds
// 2 and 8) against the paper's recommended LAST+JAC_med on the same stream,
// reporting each one's detection time and mistake count.
func BenchmarkAccrualVsPaper(b *testing.B) {
	var res *experiment.QoSResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunQoS(experiment.QoSConfig{
			Runs:              1,
			NumCycles:         5000,
			Seed:              int64(i) + 1,
			Combos:            []core.Combo{{Predictor: "LAST", Margin: "JAC_med"}},
			AccrualThresholds: []float64{2, 8},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range []string{"LAST+JAC_med", "ACCRUAL_2", "ACCRUAL_8"} {
		if q, ok := res.ByDetector[name]; ok {
			b.ReportMetric(q.TD.Mean, name+"-TD-ms")
			b.ReportMetric(float64(q.Mistakes), name+"-mistakes")
		}
	}
}

// BenchmarkSimulationThroughput measures raw engine throughput: simulated
// heartbeat cycles per second with the full 30-detector monitor.
func BenchmarkSimulationThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiment.RunQoS(experiment.QoSConfig{
			Runs:      1,
			NumCycles: 2000,
			Seed:      int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	cyclesPerOp := 2000.0 * 30 // cycles × detectors
	b.ReportMetric(cyclesPerOp, "detector-cycles/op")
}

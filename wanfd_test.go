package wanfd

import (
	stdnet "net"
	"sync/atomic"
	"testing"
	"time"
)

func TestPublicNames(t *testing.T) {
	if got := PredictorNames(); len(got) != 5 {
		t.Errorf("predictors = %v, want 5", got)
	}
	if got := MarginNames(); len(got) != 6 {
		t.Errorf("margins = %v, want 6", got)
	}
	combos := Combinations()
	if len(combos) != 30 {
		t.Fatalf("combinations = %d, want 30", len(combos))
	}
	if combos[0].Name() == "" {
		t.Error("combination name empty")
	}
	// Returned slices are copies.
	ps := PredictorNames()
	ps[0] = "HACKED"
	if PredictorNames()[0] == "HACKED" {
		t.Error("PredictorNames returns internal slice")
	}
}

func TestNewPredictorAndMargin(t *testing.T) {
	for _, n := range PredictorNames() {
		if _, err := NewPredictor(n); err != nil {
			t.Errorf("NewPredictor(%q): %v", n, err)
		}
	}
	for _, n := range MarginNames() {
		if _, err := NewMargin(n); err != nil {
			t.Errorf("NewMargin(%q): %v", n, err)
		}
	}
	if _, err := NewPredictor("NOPE"); err == nil {
		t.Error("unknown predictor should fail")
	}
	if _, err := NewMargin("NOPE"); err == nil {
		t.Error("unknown margin should fail")
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(DetectorConfig{Margin: "JAC_med", Eta: time.Second}); err == nil {
		t.Error("missing predictor should fail")
	}
	if _, err := NewDetector(DetectorConfig{Predictor: "LAST", Eta: time.Second}); err == nil {
		t.Error("missing margin should fail")
	}
	if _, err := NewDetector(DetectorConfig{Predictor: "LAST", Margin: "JAC_med"}); err == nil {
		t.Error("missing eta should fail")
	}
	if _, err := NewDetector(DetectorConfig{Predictor: "NOPE", Margin: "JAC_med", Eta: time.Second}); err == nil {
		t.Error("unknown predictor should fail")
	}
	if _, err := NewDetector(DetectorConfig{Predictor: "LAST", Margin: "NOPE", Eta: time.Second}); err == nil {
		t.Error("unknown margin should fail")
	}
}

// TestDeprecatedStatsWrapper pins the deprecated tuple Stats to the
// DetectorStats snapshot it wraps, so the wrapper cannot silently drift
// while external callers migrate.
func TestDeprecatedStatsWrapper(t *testing.T) {
	d, err := NewDetector(DetectorConfig{Predictor: "LAST", Margin: "JAC_med", Eta: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	for i := int64(0); i < 5; i++ {
		d.Heartbeat(i, time.Now().Add(-2*time.Millisecond))
	}
	d.Heartbeat(2, time.Now()) // one stale duplicate
	s := d.DetectorStats()
	if s.Heartbeats != 6 || s.Stale != 1 {
		t.Errorf("heartbeats = %d (stale %d), want 6 (stale 1)", s.Heartbeats, s.Stale)
	}
}

func TestDetectorRealTimeFlow(t *testing.T) {
	var suspects, trusts atomic.Int64
	const eta = 100 * time.Millisecond
	d, err := NewDetector(DetectorConfig{
		Predictor: "LAST",
		Margin:    "JAC_med",
		Eta:       eta,
		OnSuspect: func(time.Duration) { suspects.Add(1) },
		OnTrust:   func(time.Duration) { trusts.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if d.Name() != "LAST+JAC_med" {
		t.Errorf("name = %q", d.Name())
	}
	// Feed ticker-spaced heartbeats with mildly jittered claimed delays
	// (real scheduling adds its own jitter on top; the adaptive margin
	// must absorb it, and transient mistakes are allowed).
	ticker := time.NewTicker(eta)
	for i := int64(0); i < 8; i++ {
		d.Heartbeat(i, time.Now().Add(-time.Duration(2+i%4)*time.Millisecond))
		<-ticker.C
	}
	ticker.Stop()
	lastSeq := int64(8)
	d.Heartbeat(lastSeq, time.Now().Add(-2*time.Millisecond))
	// A fresh heartbeat always restores trust under LAST (deadline ≈
	// arrival + η + margin, in the future).
	if d.Suspected() {
		t.Error("suspected immediately after a fresh heartbeat")
	}
	hb := d.DetectorStats().Heartbeats
	if hb != 9 {
		t.Errorf("heartbeats = %d, want 9", hb)
	}
	if d.Timeout() <= 0 {
		t.Errorf("timeout = %v, want positive", d.Timeout())
	}
	// Stop feeding: suspicion follows.
	deadline := time.Now().Add(3 * time.Second)
	for !d.Suspected() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !d.Suspected() {
		t.Fatal("silence not detected")
	}
	if suspects.Load() == 0 {
		t.Error("OnSuspect not invoked")
	}
	// Resume: trust returns.
	d.Heartbeat(100, time.Now().Add(-2*time.Millisecond))
	if d.Suspected() {
		t.Error("still suspected after fresh heartbeat")
	}
	if trusts.Load() == 0 {
		t.Error("OnTrust not invoked")
	}
}

func TestDetectorCustomPredictorAndMargin(t *testing.T) {
	pred, err := NewPredictor("MEAN")
	if err != nil {
		t.Fatal(err)
	}
	margin, err := NewMargin("CI_low")
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDetector(DetectorConfig{
		CustomPredictor: pred,
		CustomMargin:    margin,
		Eta:             time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if d.Name() != "MEAN+CI_low" {
		t.Errorf("name = %q", d.Name())
	}
}

func TestAccrualPublicAPI(t *testing.T) {
	a, err := NewAccrual(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccrual(1, 0); err == nil {
		t.Error("window 1 should fail")
	}
	for i := 0; i < 5; i++ {
		a.Heartbeat()
		time.Sleep(5 * time.Millisecond)
	}
	if a.Suspected(8) {
		t.Error("suspected immediately after heartbeats")
	}
	if a.Phi() < 0 {
		t.Errorf("phi = %v, want non-negative", a.Phi())
	}
}

// freeUDPPorts reserves n distinct loopback UDP ports and releases them,
// so both sides of the harness can be configured with concrete addresses.
func freeUDPPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	conns := make([]interface{ Close() error }, 0, n)
	for i := 0; i < n; i++ {
		pc, err := stdnet.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, pc)
		addrs = append(addrs, pc.LocalAddr().String())
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return addrs
}

func TestUDPMonitorHeartbeaterIntegration(t *testing.T) {
	addrs := freeUDPPorts(t, 2)
	hbAddr, monAddr := addrs[0], addrs[1]

	hb, err := RunHeartbeater(HeartbeaterConfig{
		Listen: hbAddr,
		Remote: monAddr,
		Eta:    25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	mon, err := ListenAndMonitor(MonitorConfig{
		Listen:    monAddr,
		Remote:    hbAddr,
		Eta:       25 * time.Millisecond,
		SyncClock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	time.Sleep(500 * time.Millisecond)
	hbCount := mon.DetectorStats().Heartbeats
	if hbCount < 5 {
		t.Errorf("monitor saw %d heartbeats, want several", hbCount)
	}
	if off := mon.ClockOffset(); off < -50*time.Millisecond || off > 50*time.Millisecond {
		t.Errorf("loopback clock offset %v, want ≈0", off)
	}
	// Crash the heartbeater.
	sent := hb.Sent()
	_ = hb.Close()
	deadline := time.Now().Add(3 * time.Second)
	for !mon.Suspected() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !mon.Suspected() {
		t.Fatal("heartbeater crash not detected over UDP")
	}
	if sent == 0 {
		t.Error("heartbeater sent nothing")
	}
}

func TestUDPConfigValidationPublic(t *testing.T) {
	if _, err := ListenAndMonitor(MonitorConfig{Listen: ":0", Eta: time.Second}); err == nil {
		t.Error("missing remote should fail")
	}
	if _, err := RunHeartbeater(HeartbeaterConfig{Listen: ":0", Eta: time.Second}); err == nil {
		t.Error("missing remote should fail")
	}
	if _, err := ListenAndMonitor(MonitorConfig{
		Listen: "127.0.0.1:0", Remote: "127.0.0.1:1", Eta: time.Second, Predictor: "NOPE",
	}); err == nil {
		t.Error("unknown predictor should fail")
	}
}

func TestReproduceAccuracyPublic(t *testing.T) {
	rows, err := ReproduceAccuracy(ChannelItalyJapan, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].MSqErr > rows[i].MSqErr {
			t.Error("rows not sorted")
		}
	}
}

func TestReproduceQoSPublic(t *testing.T) {
	reports, err := ReproduceQoS(QoSOptions{
		Runs:      1,
		NumCycles: 1500,
		MTTC:      150 * time.Second,
		TTR:       15 * time.Second,
		Seed:      4,
		Combos: []Combination{
			{Predictor: "LAST", Margin: "JAC_med"},
			{Predictor: "MEAN", Margin: "CI_high"},
		},
		Baselines: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 2 combos + 2 baselines", len(reports))
	}
	for _, r := range reports {
		if r.Crashes == 0 {
			t.Errorf("%s saw no crashes", r.Detector)
		}
		if r.PA < 0 || r.PA > 1 {
			t.Errorf("%s PA = %v out of [0,1]", r.Detector, r.PA)
		}
	}
}

func TestCharacterizeChannelPublic(t *testing.T) {
	c, err := CharacterizeChannel(ChannelItalyJapan, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanDelay < 195*time.Millisecond || c.MeanDelay > 220*time.Millisecond {
		t.Errorf("mean delay = %v, want ≈206ms", c.MeanDelay)
	}
	if c.LossRate >= 0.02 {
		t.Errorf("loss = %v, want small", c.LossRate)
	}
	for _, p := range []ChannelPreset{ChannelLAN, ChannelLossyMobile} {
		if _, err := CharacterizeChannel(p, 1000, 3); err != nil {
			t.Errorf("preset %d: %v", p, err)
		}
	}
}

func TestUDPAccrualMonitor(t *testing.T) {
	addrs := freeUDPPorts(t, 2)
	hbAddr, monAddr := addrs[0], addrs[1]

	hb, err := RunHeartbeater(HeartbeaterConfig{
		Listen: hbAddr,
		Remote: monAddr,
		Eta:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	mon, err := ListenAndMonitor(MonitorConfig{
		Listen:           monAddr,
		Remote:           hbAddr,
		Eta:              20 * time.Millisecond,
		AccrualThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	time.Sleep(500 * time.Millisecond)
	hbs := mon.DetectorStats().Heartbeats
	if hbs < 10 {
		t.Errorf("monitor saw %d heartbeats", hbs)
	}
	if mon.Timeout() != 0 {
		t.Errorf("accrual monitor Timeout = %v, want 0", mon.Timeout())
	}
	if mon.Phi() < 0 {
		t.Errorf("phi = %v", mon.Phi())
	}
	_ = hb.Close()
	deadline := time.Now().Add(3 * time.Second)
	for !mon.Suspected() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !mon.Suspected() {
		t.Fatal("accrual monitor did not detect the crash")
	}
	if mon.Phi() <= 3 {
		t.Errorf("phi = %v after crash, want above threshold", mon.Phi())
	}
}

func TestUDPAdaptiveIntervalMonitor(t *testing.T) {
	addrs := freeUDPPorts(t, 2)
	hbAddr, monAddr := addrs[0], addrs[1]

	hb, err := RunHeartbeater(HeartbeaterConfig{
		Listen: hbAddr,
		Remote: monAddr,
		Eta:    time.Second, // deliberately slow (1 Hz) for the target
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	mon, err := ListenAndMonitor(MonitorConfig{
		Listen:          monAddr,
		Remote:          hbAddr,
		Eta:             time.Second,
		TargetDetection: 300 * time.Millisecond, // demands η ≈ 260 ms (≈4 Hz)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// The controller's first evaluation fires after its 10 s period; wait
	// for the commanded interval to take effect by observing a heartbeat
	// rate clearly above the original 1 Hz.
	deadline := time.Now().Add(25 * time.Second)
	sped := false
	for time.Now().Before(deadline) {
		before := mon.DetectorStats().Heartbeats
		time.Sleep(time.Second)
		after := mon.DetectorStats().Heartbeats
		if after-before >= 3 {
			sped = true
			break
		}
	}
	if !sped {
		t.Fatal("heartbeat rate never rose above 1 Hz; adaptive interval not applied")
	}
	if mon.Suspected() {
		t.Error("suspected while adapted heartbeats flow")
	}
	// TargetDetection with accrual must be rejected.
	if _, err := ListenAndMonitor(MonitorConfig{
		Listen: "127.0.0.1:0", Remote: hbAddr, Eta: time.Second,
		TargetDetection: time.Second, AccrualThreshold: 8,
	}); err == nil {
		t.Error("TargetDetection + AccrualThreshold should be rejected")
	}
}

module wanfd

go 1.22

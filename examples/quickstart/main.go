// Quickstart: embed an adaptive failure detector in your own code.
//
// This example feeds a detector a heartbeat stream by hand (the way an
// application with its own transport would), then stops feeding it to
// simulate a crash, and finally resumes to show the mistake being
// corrected.
//
// Run with: go run ./examples/quickstart
//
//fdlint:file-ignore clockuse the example plays the application role, feeding real wall-clock send times into the public API
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"wanfd"
)

func main() {
	const eta = 100 * time.Millisecond

	det, err := wanfd.NewDetector(wanfd.DetectorConfig{
		// The paper's overall recommendation: LAST + SM_JAC is the
		// simplest combination with near-best detection time and good
		// accuracy.
		Predictor: "LAST",
		Margin:    "JAC_med",
		Eta:       eta,
		OnSuspect: func(at time.Duration) {
			fmt.Printf("  [%6.2fs] detector: SUSPECT\n", at.Seconds())
		},
		OnTrust: func(at time.Duration) {
			fmt.Printf("  [%6.2fs] detector: TRUST\n", at.Seconds())
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer det.Stop()

	rng := rand.New(rand.NewSource(1)) //nolint:gosec // demo jitter
	beat := func(seq int64) {
		// Pretend the heartbeat took 5–15 ms to arrive.
		delay := 5*time.Millisecond + time.Duration(rng.Intn(10))*time.Millisecond
		det.Heartbeat(seq, time.Now().Add(-delay))
	}

	fmt.Println("phase 1: healthy process, one heartbeat per 100ms")
	seq := int64(0)
	for i := 0; i < 15; i++ {
		beat(seq)
		seq++
		time.Sleep(eta)
	}
	fmt.Printf("  suspected=%v, adaptive timeout=%v\n",
		det.Suspected(), det.Timeout().Round(time.Millisecond))

	fmt.Println("phase 2: the process crashes (heartbeats stop)")
	time.Sleep(10 * eta)
	fmt.Printf("  suspected=%v\n", det.Suspected())

	fmt.Println("phase 3: the process recovers")
	seq += 10 // cycles elapsed while down
	for i := 0; i < 5; i++ {
		beat(seq)
		seq++
		time.Sleep(eta)
	}
	fmt.Printf("  suspected=%v\n", det.Suspected())

	s := det.DetectorStats()
	fmt.Printf("done: %d heartbeats (%d stale), %d suspicion episodes\n", s.Heartbeats, s.Stale, s.Suspicions)
}

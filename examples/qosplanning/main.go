// QoS planning: size a detector from requirements instead of picking one.
// Given a network characterization (here: the paper's Table 4 numbers) and
// QoS targets, the planner computes the heartbeat period and constant
// timeout; we then run the planned detector against a real loopback
// heartbeater at the planned rate and watch it meet its detection bound.
//
// Run with: go run ./examples/qosplanning
//
//fdlint:file-ignore clockuse the example plays the application role, timing the demo loop on the real wall clock
package main

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"wanfd"
)

func main() {
	network := wanfd.NetworkModel{
		LossProb:    0.004,
		MeanDelay:   207 * time.Millisecond,
		StdDevDelay: 9 * time.Millisecond,
	}
	req := wanfd.QoSRequirements{
		MaxDetectionTime:     2 * time.Second,
		MinMistakeRecurrence: 10 * time.Minute,
	}
	plan, err := wanfd.PlanDetector(network, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requirements: detect within %v, mistakes rarer than every %v\n",
		req.MaxDetectionTime, req.MinMistakeRecurrence)
	fmt.Printf("plan: eta %v, timeout %v (margin %v over the mean delay)\n",
		plan.Eta.Round(time.Millisecond), plan.Timeout.Round(time.Millisecond),
		plan.Margin.Round(time.Millisecond))
	fmt.Printf("predicted: T_D^U %v, T_MR %v, P_A %.6f\n\n",
		plan.PredictedDetectionBound.Round(time.Millisecond),
		plan.PredictedMistakeRecurrence.Round(time.Second),
		plan.PredictedQueryAccuracy)

	// Materialize the plan and drive it with a real heartbeat stream at
	// the planned rate (loopback stands in for the WAN here; the delays
	// are near zero, safely inside the planned timeout).
	var suspectedAt atomic.Int64
	det, err := plan.Build(func(at time.Duration) {
		suspectedAt.Store(int64(at))
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer det.Stop()

	monAddr, hbAddr := freePort(), freePort()
	hb, err := wanfd.RunHeartbeater(wanfd.HeartbeaterConfig{
		Listen: hbAddr,
		Remote: monAddr,
		Eta:    plan.Eta,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A tiny bridge: receive the UDP heartbeats ourselves and feed the
	// planned detector (what an application embedding the detector does).
	pc, err := net.ListenPacket("udp", monAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer pc.Close()
	stop := make(chan struct{})
	go func() {
		buf := make([]byte, 2048)
		var seq int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = pc.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			n, _, err := pc.ReadFrom(buf)
			if err != nil || n == 0 {
				continue
			}
			det.Heartbeat(seq, time.Now())
			seq++
		}
	}()

	fmt.Printf("phase 1: heartbeating at the planned eta (%v) for 3 periods\n", plan.Eta.Round(time.Millisecond))
	time.Sleep(3 * plan.Eta)
	fmt.Printf("  suspected: %v\n", det.Suspected())

	fmt.Println("phase 2: crash")
	crashAt := time.Now()
	_ = hb.Close()
	for det.Suspected() == false && time.Since(crashAt) < 2*req.MaxDetectionTime {
		time.Sleep(10 * time.Millisecond)
	}
	detectionTook := time.Since(crashAt)
	close(stop)
	fmt.Printf("  detected after %v (bound %v): within bound = %v\n",
		detectionTook.Round(time.Millisecond), req.MaxDetectionTime,
		detectionTook <= req.MaxDetectionTime)
}

// freePort reserves a loopback UDP port and releases it for reuse.
func freePort() string {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	_ = pc.Close()
	return addr
}

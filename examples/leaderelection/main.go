// Leader election: the paper's motivating upper layer. A group of
// processes monitors its coordinator over WAN links and elects the
// smallest trusted member. The example contrasts an aggressive detector
// (fast failover, spurious changes) with a conservative one (slow
// failover, stable leadership) — the application-level face of the
// paper's delay-vs-accuracy trade-off.
//
// Run with: go run ./examples/leaderelection
package main

import (
	"fmt"
	"log"
	"time"

	"wanfd/internal/core"
	"wanfd/internal/membership"
	"wanfd/internal/neko"
)

func main() {
	for _, tc := range []struct {
		label string
		combo core.Combo
	}{
		{"aggressive  (ARIMA+JAC_low: tight error-driven margin)", core.Combo{Predictor: "ARIMA", Margin: "JAC_low"}},
		{"balanced    (LAST+JAC_med:  the paper's recommendation)", core.Combo{Predictor: "LAST", Margin: "JAC_med"}},
		{"conservative(MEAN+CI_high:  wide network-driven margin)", core.Combo{Predictor: "MEAN", Margin: "CI_high"}},
	} {
		res, err := membership.RunGroup(membership.GroupConfig{
			Members: []neko.ProcessID{1, 2, 3, 4},
			Combo:   tc.combo,
			Eta:     time.Second,
			Seed:    7,
			MTTC:    400 * time.Second,
			TTR:     40 * time.Second,
			Horizon: 40 * time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		var meanFailover float64
		for _, f := range res.FailoverMs {
			meanFailover += f
		}
		if len(res.FailoverMs) > 0 {
			meanFailover /= float64(len(res.FailoverMs))
		}
		fmt.Printf("%s\n", tc.label)
		fmt.Printf("  leader crashes: %d   detected failovers: %d   mean failover: %.0f ms\n",
			res.Crashes, len(res.FailoverMs), meanFailover)
		fmt.Printf("  leader changes: %d   spurious changes: %d\n\n", res.Changes, res.SpuriousChanges)
	}
	fmt.Println("faster detectors fail over sooner but depose healthy leaders more often.")
}

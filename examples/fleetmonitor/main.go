// Fleetmonitor: watch several processes from one socket. Three heartbeaters
// run on loopback; a MultiMonitor keeps one failure detector per peer
// (identified by source address). We kill one peer, watch only it become
// suspected, then bring it back.
//
// Run with: go run ./examples/fleetmonitor
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"wanfd"
)

func main() {
	monAddr := freePort()
	peers := map[string]string{
		"api-1":   freePort(),
		"db-1":    freePort(),
		"cache-1": freePort(),
	}

	mon, err := wanfd.ListenAndMonitorMany(wanfd.MultiMonitorConfig{
		Listen: monAddr,
		Peers:  peers,
		Eta:    50 * time.Millisecond,
		OnChange: func(peer string, suspected bool, at time.Duration) {
			state := "TRUST"
			if suspected {
				state = "SUSPECT"
			}
			fmt.Printf("  [%6.2fs] %-8s %s\n", at.Seconds(), peer, state)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	heartbeaters := make(map[string]*wanfd.Heartbeater, len(peers))
	for name, addr := range peers {
		hb, err := wanfd.RunHeartbeater(wanfd.HeartbeaterConfig{
			Listen: addr,
			Remote: monAddr,
			Eta:    50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		heartbeaters[name] = hb
		defer hb.Close()
	}

	fmt.Println("phase 1: all peers heartbeating")
	time.Sleep(time.Second)
	printStatus(mon)

	fmt.Println("phase 2: killing db-1")
	_ = heartbeaters["db-1"].Close()
	time.Sleep(time.Second)
	printStatus(mon)

	fmt.Println("phase 3: restarting db-1")
	hb, err := wanfd.RunHeartbeater(wanfd.HeartbeaterConfig{
		Listen: peers["db-1"],
		Remote: monAddr,
		Eta:    50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer hb.Close()
	time.Sleep(time.Second)
	printStatus(mon)
}

func printStatus(mon *wanfd.MultiMonitor) {
	for _, s := range mon.Status() {
		state := "up"
		if s.Suspected {
			state = "SUSPECTED"
		}
		fmt.Printf("  %-8s %-9s heartbeats=%-4d timeout=%v\n",
			s.Peer, state, s.Heartbeats, s.Timeout.Round(time.Millisecond))
	}
}

// freePort reserves a loopback UDP port and releases it for reuse.
func freePort() string {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	_ = pc.Close()
	return addr
}

// Fleetmonitor: watch several processes from one socket, with membership
// changing at runtime. Three heartbeaters run on loopback; a MultiMonitor
// (built with the functional-options API) keeps one failure detector per
// peer, identified by source address. We kill one peer, watch only it
// become suspected, bring it back, then grow and shrink the fleet live
// with AddPeer/RemovePeer.
//
// Run with: go run ./examples/fleetmonitor
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"wanfd"
)

func main() {
	monAddr := freePort()
	peers := map[string]string{
		"api-1":   freePort(),
		"db-1":    freePort(),
		"cache-1": freePort(),
	}

	opts := []wanfd.Option{
		wanfd.WithEta(50 * time.Millisecond),
		wanfd.WithOnChange(func(peer string, suspected bool, at time.Duration) {
			state := "TRUST"
			if suspected {
				state = "SUSPECT"
			}
			fmt.Printf("  [%6.2fs] %-8s %s\n", at.Seconds(), peer, state)
		}),
	}
	for name, addr := range peers {
		opts = append(opts, wanfd.WithPeer(name, addr))
	}
	mon, err := wanfd.NewMultiMonitor(monAddr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	heartbeaters := make(map[string]*wanfd.Heartbeater, len(peers))
	startHB := func(name, addr string) *wanfd.Heartbeater {
		hb, err := wanfd.RunHeartbeater(wanfd.HeartbeaterConfig{
			Listen: addr,
			Remote: monAddr,
			Eta:    50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		heartbeaters[name] = hb
		return hb
	}
	for name, addr := range peers {
		defer startHB(name, addr).Close()
	}

	fmt.Println("phase 1: all peers heartbeating")
	time.Sleep(time.Second)
	printStatus(mon)

	fmt.Println("phase 2: killing db-1")
	_ = heartbeaters["db-1"].Close()
	time.Sleep(time.Second)
	printStatus(mon)

	fmt.Println("phase 3: restarting db-1")
	defer startHB("db-1", peers["db-1"]).Close()
	time.Sleep(time.Second)
	printStatus(mon)

	fmt.Println("phase 4: web-1 joins the fleet at runtime")
	webAddr := freePort()
	if err := mon.AddPeer("web-1", webAddr); err != nil {
		log.Fatal(err)
	}
	defer startHB("web-1", webAddr).Close()
	time.Sleep(time.Second)
	printStatus(mon)

	fmt.Println("phase 5: cache-1 is decommissioned (removed, not suspected)")
	if err := mon.RemovePeer("cache-1"); err != nil {
		log.Fatal(err)
	}
	_ = heartbeaters["cache-1"].Close()
	time.Sleep(500 * time.Millisecond)
	printStatus(mon)

	snap := mon.Snapshot()
	fmt.Printf("cluster after %v: %d peers, %d trusted, %d suspected, %d heartbeats total\n",
		snap.Uptime.Round(time.Second), snap.Peers, snap.Trusted, snap.Suspected,
		snap.Totals.Heartbeats)
}

func printStatus(mon *wanfd.MultiMonitor) {
	for _, s := range mon.Status() {
		state := "up"
		if s.Suspected {
			state = "SUSPECTED"
		}
		fmt.Printf("  %-8s %-9s heartbeats=%-4d timeout=%v\n",
			s.Peer, state, s.Heartbeats, s.Timeout.Round(time.Millisecond))
	}
}

// freePort reserves a loopback UDP port and releases it for reuse.
func freePort() string {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	_ = pc.Close()
	return addr
}

// Livemonitor: the paper's two-process architecture over real UDP sockets
// (both ends in this process, on loopback). A heartbeater sends every
// 100 ms; a monitor detects; we crash the heartbeater, watch the
// suspicion, restart it, and watch the trust return.
//
// Run with: go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"wanfd"
)

func main() {
	hbAddr, monAddr := freePort(), freePort()
	const eta = 100 * time.Millisecond

	hb, err := wanfd.RunHeartbeater(wanfd.HeartbeaterConfig{
		Listen: hbAddr,
		Remote: monAddr,
		Eta:    eta,
	})
	if err != nil {
		log.Fatal(err)
	}

	mon, err := wanfd.ListenAndMonitor(wanfd.MonitorConfig{
		Listen:    monAddr,
		Remote:    hbAddr,
		Eta:       eta,
		Predictor: "LAST",
		Margin:    "JAC_med",
		SyncClock: true,
		OnSuspect: func(at time.Duration) {
			fmt.Printf("  [%6.2fs] SUSPECT\n", at.Seconds())
		},
		OnTrust: func(at time.Duration) {
			fmt.Printf("  [%6.2fs] TRUST\n", at.Seconds())
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	fmt.Printf("monitor %s watching heartbeater %s (clock offset %v)\n",
		monAddr, hbAddr, mon.ClockOffset())

	fmt.Println("phase 1: heartbeats flowing for 2s")
	time.Sleep(2 * time.Second)
	hbs := mon.DetectorStats().Heartbeats
	fmt.Printf("  heartbeats seen: %d, timeout: %v, suspected: %v\n",
		hbs, mon.Timeout().Round(time.Millisecond), mon.Suspected())

	fmt.Println("phase 2: crashing the heartbeater")
	_ = hb.Close()
	time.Sleep(1 * time.Second)
	fmt.Printf("  suspected: %v\n", mon.Suspected())

	fmt.Println("phase 3: restarting the heartbeater")
	hb2, err := wanfd.RunHeartbeater(wanfd.HeartbeaterConfig{
		Listen: hbAddr,
		Remote: monAddr,
		Eta:    eta,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer hb2.Close()
	time.Sleep(1 * time.Second)
	fmt.Printf("  suspected: %v\n", mon.Suspected())
}

// freePort reserves a loopback UDP port and releases it for reuse.
func freePort() string {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	_ = pc.Close()
	return addr
}

// Comparison: rank all 30 of the paper's detector combinations on the
// simulated Italy–Japan WAN — a reduced rerun of the paper's §5.2
// experiment through the public API.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"wanfd"
)

func main() {
	fmt.Println("running 2 runs x 5000 cycles with all 30 combinations (≈ seconds)...")
	reports, err := wanfd.ReproduceQoS(wanfd.QoSOptions{
		Runs:      2,
		NumCycles: 5000,
		Eta:       time.Second,
		MTTC:      300 * time.Second,
		TTR:       30 * time.Second,
		Seed:      42,
		Baselines: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-18s %10s %10s %10s %10s %10s\n",
		"detector", "T_D ms", "T_D^U ms", "T_M ms", "T_MR ms", "P_A")
	for _, r := range reports {
		fmt.Printf("%-18s %10.1f %10.1f %10.1f %10.1f %10.6f\n",
			r.Detector, r.MeanTD, r.MaxTD, r.MeanTM, r.MeanTMR, r.PA)
	}

	byTD := append([]wanfd.QoSReport(nil), reports...)
	sort.Slice(byTD, func(i, j int) bool { return byTD[i].MeanTD < byTD[j].MeanTD })
	byPA := append([]wanfd.QoSReport(nil), reports...)
	sort.Slice(byPA, func(i, j int) bool { return byPA[i].PA > byPA[j].PA })

	fmt.Println("\nfastest detection (best T_D):")
	for _, r := range byTD[:3] {
		fmt.Printf("  %-18s %.1f ms\n", r.Detector, r.MeanTD)
	}
	fmt.Println("most accurate (best P_A):")
	for _, r := range byPA[:3] {
		fmt.Printf("  %-18s %.6f\n", r.Detector, r.PA)
	}
	fmt.Println("\nthe paper's trade-off: no combination tops both lists —")
	fmt.Println("pick for your application (LAST+JAC_med is the paper's all-rounder).")
}

// Consensus: how failure-detector QoS shapes consensus latency — the
// relationship the paper cites from Coccoli et al. [6]. Five processes run
// a rotating-coordinator consensus over simulated WAN links; we crash the
// first coordinator mid-protocol and compare how long agreement takes with
// fast versus conservative detectors.
//
// Run with: go run ./examples/consensus
package main

import (
	"fmt"
	"log"
	"time"

	"wanfd/internal/consensus"
	"wanfd/internal/core"
)

func main() {
	combos := []core.Combo{
		{Predictor: "LAST", Margin: "JAC_low"},
		{Predictor: "LAST", Margin: "JAC_med"},
		{Predictor: "ARIMA", Margin: "CI_low"},
		{Predictor: "MEAN", Margin: "CI_high"},
	}

	fmt.Println("crash-free consensus (latency ≈ two WAN delays, regardless of detector):")
	for _, combo := range combos {
		res, err := consensus.RunExperiment(consensus.ExperimentConfig{
			N: 5, Combo: combo, Eta: time.Second, Seed: 1,
			PollInterval: 5 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s latency %8v  rounds %d  agreement %v\n",
			combo.Name(), res.Latency.Round(time.Millisecond), res.MaxRound+1, res.Agreement)
	}

	fmt.Println("\ncoordinator crashes mid-protocol (latency ≈ detection time + a round):")
	for _, combo := range combos {
		var total time.Duration
		const runs = 5
		for seed := int64(0); seed < runs; seed++ {
			res, err := consensus.RunExperiment(consensus.ExperimentConfig{
				N: 5, Combo: combo, Eta: time.Second, Seed: 10 + seed,
				PollInterval:       5 * time.Millisecond,
				CoordinatorCrashAt: 100 * time.Millisecond,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !res.Decided || !res.Agreement {
				log.Fatalf("%s seed %d: %+v", combo.Name(), seed, res)
			}
			total += res.Latency
		}
		fmt.Printf("  %-16s mean latency %8v over %d crashes\n",
			combo.Name(), (total / runs).Round(time.Millisecond), runs)
	}
	fmt.Println("\nthe detector's T_D is the floor of crash-path consensus latency.")
}

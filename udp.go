package wanfd

import (
	"fmt"
	"time"

	"wanfd/internal/core"
	"wanfd/internal/layers"
	"wanfd/internal/neko"
	"wanfd/internal/store"
	"wanfd/internal/telemetry"
	"wanfd/internal/transport"
)

// MonitorConfig assembles a UDP monitor: the failure-detecting side of the
// paper's architecture on a real network.
type MonitorConfig struct {
	// Listen is the local UDP address (e.g. ":7007").
	Listen string
	// Remote is the heartbeater's UDP address.
	Remote string
	// Eta is the heartbeater's sending period.
	Eta time.Duration
	// Predictor and Margin select the detector combination (defaults:
	// the paper's recommendation LAST + JAC_med).
	Predictor, Margin string
	// AccrualThreshold, when positive, replaces the freshness-point
	// detector with a φ-accrual detector at this threshold (8 is the
	// common production default); Predictor and Margin are then ignored.
	AccrualThreshold float64
	// MinTimeout floors the adaptive timeout, riding out bootstrap and
	// timer jitter on real hosts; see WithMinTimeout for the sentinel
	// convention (zero selects the default floor, negative disables it).
	MinTimeout time.Duration
	// TargetDetection, when positive, activates the adaptable sending
	// period (the Bertier extension): the monitor periodically commands
	// the heartbeater to the largest interval that keeps the worst-case
	// detection time under this target, trading bandwidth for exactly
	// the required detection speed. Requires a freshness-point detector
	// (AccrualThreshold unset).
	TargetDetection time.Duration
	// SyncClock, when true, estimates the peer clock offset with an
	// NTP-style exchange before monitoring, discharging the paper's
	// synchronized-clocks assumption in-band.
	SyncClock bool
	// OnSuspect and OnTrust are invoked on output transitions; they must
	// not block.
	OnSuspect, OnTrust func(elapsed time.Duration)
}

// Monitor is a running UDP failure detector.
type Monitor struct {
	net   *transport.UDPNetwork
	mon   *layers.Monitor
	reg   *telemetry.Registry
	store *store.Store
}

// Process ids used by the UDP harness (one heartbeater, one monitor).
const (
	udpHeartbeaterID neko.ProcessID = 1
	udpMonitorID     neko.ProcessID = 2
)

// ListenAndMonitor opens the socket, optionally syncs clocks with the
// remote heartbeater, and starts detecting. Close must be called to release
// the socket.
func ListenAndMonitor(cfg MonitorConfig) (*Monitor, error) {
	o := options{
		eta:              cfg.Eta,
		predictor:        cfg.Predictor,
		margin:           cfg.Margin,
		minTimeout:       cfg.MinTimeout,
		accrualThreshold: cfg.AccrualThreshold,
		targetDetection:  cfg.TargetDetection,
		syncClock:        cfg.SyncClock,
		onSuspect:        cfg.OnSuspect,
		onTrust:          cfg.OnTrust,
	}
	o.normalize()
	return newUDPMonitor(cfg.Listen, cfg.Remote, o)
}

// NewMonitor is the functional-options form of ListenAndMonitor, sharing
// its option vocabulary with NewMultiMonitor:
//
//	mon, err := wanfd.NewMonitor(":7007", "host:7008",
//		wanfd.WithEta(time.Second),
//		wanfd.WithPredictor("ARIMA"), wanfd.WithMargin("CI_low"))
//
// Close must be called to release the socket.
func NewMonitor(listen, remote string, opts ...Option) (*Monitor, error) {
	o := resolveOptions(opts)
	if len(o.peers) > 0 {
		return nil, fmt.Errorf("wanfd: NewMonitor does not support WithPeer (use NewMultiMonitor)")
	}
	return newUDPMonitor(listen, remote, o)
}

func newUDPMonitor(listen, remote string, o options) (*Monitor, error) {
	if remote == "" {
		return nil, fmt.Errorf("wanfd: monitor needs the heartbeater address")
	}
	net, err := transport.NewUDPNetwork(transport.UDPConfig{
		LocalID:             udpMonitorID,
		Listen:              listen,
		Peers:               map[neko.ProcessID]string{udpHeartbeaterID: remote},
		Telemetry:           o.telemetry,
		Unbatched:           o.batchedOff,
		Readers:             o.readers,
		UnbatchedEgress:     o.egressOff,
		EgressBatch:         o.egressBatch,
		EgressFlushInterval: o.egressFlushInterval,
	})
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			_ = net.Close()
		}
	}()

	if o.syncClock {
		if _, err := net.SyncWith(udpHeartbeaterID, 8, 2*time.Second); err != nil {
			return nil, fmt.Errorf("wanfd: clock sync: %w", err)
		}
	}
	// One durable-store recorder for the single monitored peer, labeled by
	// the remote address like the telemetry series; nil (a no-op) without
	// WithStore.
	rec := o.qstore.Recorder(remote)
	o.qstore.Instrument(o.telemetry)
	listener := callbackListener{
		onSuspect: o.onSuspect,
		onTrust:   o.onTrust,
		onChange:  o.onChange,
		peer:      remote,
		reg:       o.telemetry,
		rec:       rec,
	}
	var consumer core.HeartbeatConsumer
	if o.accrualThreshold > 0 {
		acc, err := core.NewAccrualDetector(core.AccrualDetectorConfig{
			Threshold: o.accrualThreshold,
			Clock:     net.Clock(),
			Listener:  listener,
		})
		if err != nil {
			return nil, err
		}
		consumer = acc
	} else {
		pred, err := core.NewPredictorByName(o.predictor)
		if err != nil {
			return nil, err
		}
		margin, err := core.NewMarginByName(o.margin)
		if err != nil {
			return nil, err
		}
		det, err := core.NewDetector(core.DetectorConfig{
			Predictor:  pred,
			Margin:     margin,
			Eta:        o.eta,
			Clock:      net.Clock(),
			Listener:   listener,
			MinTimeout: o.minTimeout,
			Metrics:    o.telemetry.DetectorMetrics(remote),
			Sample:     rec,
		})
		if err != nil {
			return nil, err
		}
		// State the detector tracks anyway is sampled at scrape time
		// rather than pushed per heartbeat.
		o.telemetry.DetectorFuncs(remote,
			func() (uint64, uint64, uint64) {
				st := det.DetectorStats()
				return st.Heartbeats, st.Stale, st.Suspicions
			},
			func() float64 { return det.CurrentTimeout() / 1e3 },
			det.Suspected,
		)
		consumer = det
	}
	mon, err := layers.NewConsumerMonitor(consumer)
	if err != nil {
		return nil, err
	}
	stack := []neko.Layer{mon}
	if o.targetDetection > 0 {
		det := mon.Detector()
		if det == nil {
			return nil, fmt.Errorf("wanfd: TargetDetection requires a freshness-point detector (unset AccrualThreshold)")
		}
		ctrl, err := layers.NewIntervalController(layers.IntervalControllerConfig{
			Detector:        det,
			TargetDetection: o.targetDetection,
			Peer:            udpHeartbeaterID,
		})
		if err != nil {
			return nil, err
		}
		stack = []neko.Layer{ctrl, mon}
	}
	proc, err := neko.NewProcess(udpMonitorID, net.Clock(), net, stack...)
	if err != nil {
		return nil, err
	}
	if err := proc.Start(); err != nil {
		return nil, err
	}
	ok = true
	return &Monitor{net: net, mon: mon, reg: o.telemetry, store: o.qstore}, nil
}

// Suspected reports the detector's current output.
func (m *Monitor) Suspected() bool { return m.mon.Consumer().Suspected() }

// Timeout returns the current adaptive timeout of a freshness-point
// detector; for a φ-accrual monitor it returns 0 (use Phi instead).
func (m *Monitor) Timeout() time.Duration {
	det := m.mon.Detector()
	if det == nil {
		return 0
	}
	return time.Duration(det.CurrentTimeout() * float64(time.Millisecond))
}

// Phi returns the φ-accrual suspicion level, or 0 for a freshness-point
// monitor.
func (m *Monitor) Phi() float64 {
	if acc, ok := m.mon.Consumer().(*core.AccrualDetector); ok {
		return acc.Phi()
	}
	return 0
}

// ClockOffset returns the estimated peer clock offset (0 if SyncClock was
// not requested).
func (m *Monitor) ClockOffset() time.Duration { return m.net.Offset(udpHeartbeaterID) }

// DetectorStats returns a snapshot of the detector's lifetime counters
// (zero for consumer kinds that expose none).
func (m *Monitor) DetectorStats() DetectorStats {
	if s, ok := m.mon.Consumer().(StatsProvider); ok {
		return s.DetectorStats()
	}
	return DetectorStats{}
}

// Close stops the detector and releases the socket.
func (m *Monitor) Close() error {
	m.mon.Stop()
	return m.net.Close()
}

// HeartbeaterConfig assembles a UDP heartbeater: the monitored side.
type HeartbeaterConfig struct {
	// Listen is the local UDP address (also answers clock-sync requests).
	Listen string
	// Remote is the monitor's UDP address.
	Remote string
	// Remotes are additional monitor addresses. With more than one remote
	// in total the heartbeater runs a HeartbeaterGroup: every monitor gets
	// its own η-grid, phase-staggered across the interval, and the grids
	// drain through the transport's batched egress pipeline (one sendmmsg
	// per flush) instead of one write syscall per monitor per cycle.
	Remotes []string
	// Eta is the sending period.
	Eta time.Duration
}

// Heartbeater is a running UDP heartbeat sender serving one or more
// monitors.
type Heartbeater struct {
	net *transport.UDPNetwork
	hb  *layers.Heartbeater      // single-monitor form
	grp *layers.HeartbeaterGroup // multi-monitor form
}

// RunHeartbeater opens the socket and starts sending heartbeats every Eta
// to every configured monitor. Close must be called to stop sending and
// release the socket.
func RunHeartbeater(cfg HeartbeaterConfig) (*Heartbeater, error) {
	remotes := make([]string, 0, 1+len(cfg.Remotes))
	if cfg.Remote != "" {
		remotes = append(remotes, cfg.Remote)
	}
	remotes = append(remotes, cfg.Remotes...)
	if len(remotes) == 0 {
		return nil, fmt.Errorf("wanfd: heartbeater needs the monitor address")
	}
	peers := make(map[neko.ProcessID]string, len(remotes))
	for i, addr := range remotes {
		peers[udpMonitorID+neko.ProcessID(i)] = addr
	}
	net, err := transport.NewUDPNetwork(transport.UDPConfig{
		LocalID: udpHeartbeaterID,
		Listen:  cfg.Listen,
		Peers:   peers,
	})
	if err != nil {
		return nil, err
	}
	h := &Heartbeater{net: net}
	// Number cycles on the shared wall-clock grid (σ_i = i·η) so a
	// restarted heartbeater resumes with fresh sequence numbers.
	startSeq := net.WallTime().UnixNano() / int64(cfg.Eta)
	var top neko.Layer
	if len(remotes) == 1 {
		hb, err := layers.NewHeartbeater(udpMonitorID, cfg.Eta)
		if err != nil {
			_ = net.Close()
			return nil, err
		}
		if err := hb.SetStartSeq(startSeq); err != nil {
			_ = net.Close()
			return nil, err
		}
		h.hb, top = hb, hb
	} else {
		grp, err := layers.NewHeartbeaterGroup(cfg.Eta)
		if err != nil {
			_ = net.Close()
			return nil, err
		}
		for i := range remotes {
			if err := grp.Add(udpMonitorID+neko.ProcessID(i), startSeq); err != nil {
				_ = net.Close()
				return nil, err
			}
		}
		h.grp, top = grp, grp
	}
	proc, err := neko.NewProcess(udpHeartbeaterID, net.Clock(), net, top)
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	if err := proc.Start(); err != nil {
		_ = net.Close()
		return nil, err
	}
	return h, nil
}

// Sent returns the number of heartbeats emitted (summed over all monitors
// in the multi-monitor form).
func (h *Heartbeater) Sent() uint64 {
	if h.grp != nil {
		return h.grp.Sent()
	}
	return h.hb.Sent()
}

// LocalAddr returns the bound UDP address string.
func (h *Heartbeater) LocalAddr() string { return h.net.LocalAddr().String() }

// Close stops sending and releases the socket.
func (h *Heartbeater) Close() error {
	if h.grp != nil {
		h.grp.Stop()
	} else {
		h.hb.Stop()
	}
	return h.net.Close()
}

// LocalAddr returns the monitor's bound UDP address string.
func (m *Monitor) LocalAddr() string { return m.net.LocalAddr().String() }

// Telemetry returns the registry the monitor was built with (nil without
// WithTelemetry).
func (m *Monitor) Telemetry() *telemetry.Registry { return m.reg }

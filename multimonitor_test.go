package wanfd

import (
	"sync"
	"testing"
	"time"
)

func TestMultiMonitorValidation(t *testing.T) {
	if _, err := ListenAndMonitorMany(MultiMonitorConfig{Listen: ":0", Eta: time.Second}); err == nil {
		t.Error("no peers should be rejected")
	}
	if _, err := ListenAndMonitorMany(MultiMonitorConfig{
		Listen: "127.0.0.1:0",
		Peers:  map[string]string{"a": "not::an::addr"},
		Eta:    time.Second,
	}); err == nil {
		t.Error("bad peer address should be rejected")
	}
	if _, err := ListenAndMonitorMany(MultiMonitorConfig{
		Listen:    "127.0.0.1:0",
		Peers:     map[string]string{"a": "127.0.0.1:1"},
		Eta:       time.Second,
		Predictor: "NOPE",
	}); err == nil {
		t.Error("unknown predictor should be rejected")
	}
}

func TestMultiMonitorTwoPeers(t *testing.T) {
	addrs := freeUDPPorts(t, 3)
	monAddr, aAddr, bAddr := addrs[0], addrs[1], addrs[2]
	const eta = 25 * time.Millisecond

	var mu sync.Mutex
	events := make(map[string][]bool)
	mon, err := ListenAndMonitorMany(MultiMonitorConfig{
		Listen: monAddr,
		Peers:  map[string]string{"alpha": aAddr, "beta": bAddr},
		Eta:    eta,
		OnChange: func(peer string, suspected bool, _ time.Duration) {
			mu.Lock()
			events[peer] = append(events[peer], suspected)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	hbA, err := RunHeartbeater(HeartbeaterConfig{Listen: aAddr, Remote: monAddr, Eta: eta})
	if err != nil {
		t.Fatal(err)
	}
	defer hbA.Close()
	hbB, err := RunHeartbeater(HeartbeaterConfig{Listen: bAddr, Remote: monAddr, Eta: eta})
	if err != nil {
		t.Fatal(err)
	}
	defer hbB.Close()

	time.Sleep(400 * time.Millisecond)
	status := mon.Status()
	if len(status) != 2 {
		t.Fatalf("status entries = %d, want 2", len(status))
	}
	for _, s := range status {
		if s.Heartbeats < 5 {
			t.Errorf("peer %s saw only %d heartbeats", s.Peer, s.Heartbeats)
		}
	}

	// Crash only alpha; beta must stay trusted.
	_ = hbA.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		s, err := mon.Suspected("alpha")
		if err != nil {
			t.Fatal(err)
		}
		if s {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	suspA, err := mon.Suspected("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !suspA {
		t.Fatal("alpha's crash not detected")
	}
	suspB, err := mon.Suspected("beta")
	if err != nil {
		t.Fatal(err)
	}
	if suspB {
		t.Error("beta wrongly suspected after alpha's crash")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events["alpha"]) == 0 || !events["alpha"][len(events["alpha"])-1] {
		t.Errorf("alpha events = %v, want trailing suspect", events["alpha"])
	}
	if _, err := mon.Suspected("nobody"); err == nil {
		t.Error("unknown peer should be rejected")
	}
	if mon.LocalAddr() == "" {
		t.Error("LocalAddr empty")
	}
}

func TestMultiMonitorTrustCallbackAfterRecovery(t *testing.T) {
	addrs := freeUDPPorts(t, 2)
	monAddr, aAddr := addrs[0], addrs[1]
	const eta = 20 * time.Millisecond

	var mu sync.Mutex
	var transitions []bool
	mon, err := ListenAndMonitorMany(MultiMonitorConfig{
		Listen: monAddr,
		Peers:  map[string]string{"a": aAddr},
		Eta:    eta,
		OnChange: func(_ string, suspected bool, _ time.Duration) {
			mu.Lock()
			transitions = append(transitions, suspected)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	hb, err := RunHeartbeater(HeartbeaterConfig{Listen: aAddr, Remote: monAddr, Eta: eta})
	if err != nil {
		t.Fatal(err)
	}
	if hb.LocalAddr() == "" {
		t.Error("heartbeater LocalAddr empty")
	}
	time.Sleep(200 * time.Millisecond)
	_ = hb.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if s, _ := mon.Suspected("a"); s {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Recover: the OnChange trust path must fire.
	hb2, err := RunHeartbeater(HeartbeaterConfig{Listen: aAddr, Remote: monAddr, Eta: eta})
	if err != nil {
		t.Fatal(err)
	}
	defer hb2.Close()
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if s, _ := mon.Suspected("a"); !s {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	sawTrust := false
	for _, s := range transitions {
		if !s {
			sawTrust = true
		}
	}
	if !sawTrust {
		t.Errorf("transitions %v: no trust callback after recovery", transitions)
	}
}
